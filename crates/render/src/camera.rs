//! Pinhole camera intrinsics and image containers.

use rtgs_math::{Vec2, Vec3};

/// Pinhole camera intrinsics tied to an image resolution.
///
/// Poses are kept separate ([`rtgs_math::Se3`], world-to-camera convention
/// in the renderer) so the same intrinsics serve a whole trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PinholeCamera {
    /// Image width in pixels.
    pub width: usize,
    /// Image height in pixels.
    pub height: usize,
    /// Focal length in pixels along x.
    pub fx: f32,
    /// Focal length in pixels along y.
    pub fy: f32,
    /// Principal point x.
    pub cx: f32,
    /// Principal point y.
    pub cy: f32,
}

impl PinholeCamera {
    /// Creates intrinsics from explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is zero.
    pub fn new(width: usize, height: usize, fx: f32, fy: f32, cx: f32, cy: f32) -> Self {
        assert!(
            width > 0 && height > 0,
            "camera resolution must be non-zero"
        );
        Self {
            width,
            height,
            fx,
            fy,
            cx,
            cy,
        }
    }

    /// Creates intrinsics from a horizontal field of view (radians) with the
    /// principal point at the image center.
    pub fn from_fov(width: usize, height: usize, fov_x: f32) -> Self {
        let fx = width as f32 / (2.0 * (fov_x / 2.0).tan());
        Self::new(
            width,
            height,
            fx,
            fx,
            width as f32 / 2.0,
            height as f32 / 2.0,
        )
    }

    /// Total pixel count.
    #[inline]
    pub fn pixel_count(&self) -> usize {
        self.width * self.height
    }

    /// Returns intrinsics for the same view at `1/factor` of the linear
    /// resolution (the paper's dynamic-downsampling resizes, Sec. 4.2).
    ///
    /// `factor == 1` returns `self` unchanged; resolutions are floored but
    /// kept at least 1 pixel.
    pub fn downsampled(&self, factor: usize) -> Self {
        assert!(factor > 0, "downsample factor must be positive");
        if factor == 1 {
            return *self;
        }
        let f = factor as f32;
        Self {
            width: (self.width / factor).max(1),
            height: (self.height / factor).max(1),
            fx: self.fx / f,
            fy: self.fy / f,
            cx: self.cx / f,
            cy: self.cy / f,
        }
    }

    /// Projects a camera-frame point to pixel coordinates. `z` must be
    /// positive (in front of the camera); callers cull beforehand.
    #[inline]
    pub fn project(&self, p_cam: Vec3) -> Vec2 {
        Vec2::new(
            self.fx * p_cam.x / p_cam.z + self.cx,
            self.fy * p_cam.y / p_cam.z + self.cy,
        )
    }

    /// True when a pixel-coordinate point falls inside the image bounds.
    #[inline]
    pub fn contains(&self, p: Vec2) -> bool {
        p.x >= 0.0 && p.y >= 0.0 && p.x < self.width as f32 && p.y < self.height as f32
    }
}

/// An RGB image stored as a flat row-major `Vec<Vec3>`.
#[derive(Debug, Clone, PartialEq)]
pub struct Image {
    width: usize,
    height: usize,
    data: Vec<Vec3>,
}

impl Image {
    /// Creates a black image.
    pub fn new(width: usize, height: usize) -> Self {
        Self {
            width,
            height,
            data: vec![Vec3::ZERO; width * height],
        }
    }

    /// Creates an image from raw pixel data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != width * height`.
    pub fn from_data(width: usize, height: usize, data: Vec<Vec3>) -> Self {
        assert_eq!(data.len(), width * height, "pixel buffer size mismatch");
        Self {
            width,
            height,
            data,
        }
    }

    /// Resizes in place to `width × height` and blanks every pixel,
    /// retaining the buffer's capacity — the allocation-free reuse path of
    /// the frame arena.
    pub fn reset(&mut self, width: usize, height: usize) {
        self.width = width;
        self.height = height;
        self.data.clear();
        self.data.resize(width * height, Vec3::ZERO);
    }

    /// Image width in pixels.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Reads pixel `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    #[inline]
    pub fn pixel(&self, x: usize, y: usize) -> Vec3 {
        self.data[y * self.width + x]
    }

    /// Writes pixel `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    #[inline]
    pub fn set_pixel(&mut self, x: usize, y: usize, v: Vec3) {
        self.data[y * self.width + x] = v;
    }

    /// The flat row-major pixel buffer.
    #[inline]
    pub fn data(&self) -> &[Vec3] {
        &self.data
    }

    /// Mutable access to the flat pixel buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [Vec3] {
        &mut self.data
    }

    /// Box-filter downsample by an integer factor (used to produce
    /// ground-truth targets at the dynamically selected resolution).
    pub fn downsampled(&self, factor: usize) -> Image {
        assert!(factor > 0, "downsample factor must be positive");
        if factor == 1 {
            return self.clone();
        }
        let w = (self.width / factor).max(1);
        let h = (self.height / factor).max(1);
        let mut out = Image::new(w, h);
        for y in 0..h {
            for x in 0..w {
                let mut acc = Vec3::ZERO;
                let mut n = 0.0f32;
                for dy in 0..factor {
                    for dx in 0..factor {
                        let sx = x * factor + dx;
                        let sy = y * factor + dy;
                        if sx < self.width && sy < self.height {
                            acc += self.pixel(sx, sy);
                            n += 1.0;
                        }
                    }
                }
                out.set_pixel(x, y, acc / n.max(1.0));
            }
        }
        out
    }

    /// Mean per-channel absolute difference to another image of identical
    /// dimensions.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn mean_abs_diff(&self, other: &Image) -> f32 {
        assert_eq!(self.width, other.width);
        assert_eq!(self.height, other.height);
        let mut acc = 0.0f64;
        for (a, b) in self.data.iter().zip(other.data.iter()) {
            let d = *a - *b;
            acc += (d.x.abs() + d.y.abs() + d.z.abs()) as f64;
        }
        (acc / (self.data.len() as f64 * 3.0)) as f32
    }
}

/// A depth map stored as a flat row-major `Vec<f32>`; `0.0` means "no
/// depth" (nothing rendered / invalid).
#[derive(Debug, Clone, PartialEq)]
pub struct DepthImage {
    width: usize,
    height: usize,
    data: Vec<f32>,
}

impl DepthImage {
    /// Creates a depth image filled with zeros (invalid depth).
    pub fn new(width: usize, height: usize) -> Self {
        Self {
            width,
            height,
            data: vec![0.0; width * height],
        }
    }

    /// Creates a depth image from raw data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != width * height`.
    pub fn from_data(width: usize, height: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), width * height, "depth buffer size mismatch");
        Self {
            width,
            height,
            data,
        }
    }

    /// Resizes in place to `width × height` and invalidates every sample
    /// (depth 0.0), retaining the buffer's capacity.
    pub fn reset(&mut self, width: usize, height: usize) {
        self.width = width;
        self.height = height;
        self.data.clear();
        self.data.resize(width * height, 0.0);
    }

    /// Image width in pixels.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Reads depth at `(x, y)`.
    #[inline]
    pub fn depth(&self, x: usize, y: usize) -> f32 {
        self.data[y * self.width + x]
    }

    /// Writes depth at `(x, y)`.
    #[inline]
    pub fn set_depth(&mut self, x: usize, y: usize, d: f32) {
        self.data[y * self.width + x] = d;
    }

    /// The flat row-major buffer.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the flat row-major buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Average-pool downsample, ignoring invalid (zero) samples.
    pub fn downsampled(&self, factor: usize) -> DepthImage {
        assert!(factor > 0, "downsample factor must be positive");
        if factor == 1 {
            return self.clone();
        }
        let w = (self.width / factor).max(1);
        let h = (self.height / factor).max(1);
        let mut out = DepthImage::new(w, h);
        for y in 0..h {
            for x in 0..w {
                let mut acc = 0.0;
                let mut n = 0.0;
                for dy in 0..factor {
                    for dx in 0..factor {
                        let sx = x * factor + dx;
                        let sy = y * factor + dy;
                        if sx < self.width && sy < self.height {
                            let d = self.depth(sx, sy);
                            if d > 0.0 {
                                acc += d;
                                n += 1.0;
                            }
                        }
                    }
                }
                out.set_depth(x, y, if n > 0.0 { acc / n } else { 0.0 });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fov_camera_centers_principal_point() {
        let cam = PinholeCamera::from_fov(640, 480, std::f32::consts::FRAC_PI_2);
        assert_eq!(cam.cx, 320.0);
        assert_eq!(cam.cy, 240.0);
        // 90 degree FOV: fx = w/2
        assert!((cam.fx - 320.0).abs() < 1e-3);
    }

    #[test]
    fn projection_of_center_ray() {
        let cam = PinholeCamera::from_fov(100, 80, 1.0);
        let p = cam.project(Vec3::new(0.0, 0.0, 2.0));
        assert!((p - Vec2::new(50.0, 40.0)).max_abs() < 1e-5);
    }

    #[test]
    fn downsampled_camera_halves_everything() {
        let cam = PinholeCamera::new(640, 480, 500.0, 510.0, 320.0, 240.0);
        let half = cam.downsampled(2);
        assert_eq!((half.width, half.height), (320, 240));
        assert_eq!(half.fx, 250.0);
        assert_eq!(half.cx, 160.0);
        // projection of the same ray lands at half the pixel coordinate
        let p_full = cam.project(Vec3::new(0.3, -0.2, 1.5));
        let p_half = half.project(Vec3::new(0.3, -0.2, 1.5));
        assert!((p_half * 2.0 - p_full).max_abs() < 1e-4);
    }

    #[test]
    fn downsample_factor_one_is_identity() {
        let cam = PinholeCamera::from_fov(64, 48, 1.0);
        assert_eq!(cam.downsampled(1), cam);
    }

    #[test]
    fn contains_checks_bounds() {
        let cam = PinholeCamera::from_fov(10, 10, 1.0);
        assert!(cam.contains(Vec2::new(0.0, 0.0)));
        assert!(cam.contains(Vec2::new(9.9, 9.9)));
        assert!(!cam.contains(Vec2::new(10.0, 5.0)));
        assert!(!cam.contains(Vec2::new(-0.1, 5.0)));
    }

    #[test]
    fn image_pixel_roundtrip() {
        let mut img = Image::new(4, 3);
        img.set_pixel(2, 1, Vec3::new(0.5, 0.6, 0.7));
        assert_eq!(img.pixel(2, 1), Vec3::new(0.5, 0.6, 0.7));
        assert_eq!(img.pixel(0, 0), Vec3::ZERO);
    }

    #[test]
    fn image_downsample_averages() {
        let mut img = Image::new(2, 2);
        img.set_pixel(0, 0, Vec3::splat(1.0));
        img.set_pixel(1, 0, Vec3::splat(0.0));
        img.set_pixel(0, 1, Vec3::splat(1.0));
        img.set_pixel(1, 1, Vec3::splat(0.0));
        let small = img.downsampled(2);
        assert_eq!(small.width(), 1);
        assert!((small.pixel(0, 0) - Vec3::splat(0.5)).max_abs() < 1e-6);
    }

    #[test]
    fn depth_downsample_skips_invalid() {
        let mut d = DepthImage::new(2, 2);
        d.set_depth(0, 0, 2.0);
        // other three pixels are invalid (0.0)
        let small = d.downsampled(2);
        assert!((small.depth(0, 0) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn mean_abs_diff_zero_for_identical() {
        let img = Image::new(8, 8);
        assert_eq!(img.mean_abs_diff(&img.clone()), 0.0);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn from_data_validates_length() {
        let _ = Image::from_data(3, 3, vec![Vec3::ZERO; 8]);
    }
}
