//! Open-loop ingestion contracts:
//!
//! 1. **Drop-oldest keeps a suffix-respecting subsequence** (property):
//!    against a reference queue model, the processed frame sequence is
//!    strictly increasing, the frames retained at any instant are the
//!    newest contiguous suffix of what was offered, and after draining,
//!    `drops == offered − processed` exactly.
//! 2. **Admission rejection is side-effect-free**: a `try_admit` refusal
//!    returns the session intact and leaves scheduler state untouched.
//! 3. **Idle tenants consume no pool jobs** (regression for the
//!    round-robin idle-spin): a session with an empty inbox parks instead
//!    of being stepped, so the pool's job counter counts only real steps.

use proptest::prelude::*;
use rtgs_runtime::{
    AdmissionError, EvictionPolicy, FrameInbox, IngestConfig, IngestHub, IngestStats, LatePolicy,
    Serve, Session, SessionStatus, ThreadPool,
};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

// ---------------------------------------------------------------------------
// 1. Drop-policy property tests
// ---------------------------------------------------------------------------

/// Reference model of a bounded inbox under a drop policy, tracking the
/// exact sequence numbers every operation should observe.
struct Model {
    queue: VecDeque<u64>,
    next_seq: u64,
    offered: u64,
    dropped: u64,
    popped: Vec<u64>,
    capacity: usize,
    policy: LatePolicy,
}

impl Model {
    fn new(capacity: usize, policy: LatePolicy) -> Self {
        Self {
            queue: VecDeque::new(),
            next_seq: 0,
            offered: 0,
            dropped: 0,
            popped: Vec::new(),
            capacity,
            policy,
        }
    }

    fn push(&mut self) {
        self.offered += 1;
        if self.queue.len() == self.capacity {
            match self.policy {
                LatePolicy::DropOldest => {
                    self.queue.pop_front();
                    self.dropped += 1;
                }
                LatePolicy::DropNewest => {
                    // Rejected frames consume no sequence number.
                    self.dropped += 1;
                    return;
                }
                LatePolicy::Block => unreachable!("model is single-threaded"),
            }
        }
        self.queue.push_back(self.next_seq);
        self.next_seq += 1;
    }

    fn pop(&mut self) {
        if let Some(seq) = self.queue.pop_front() {
            self.popped.push(seq);
        }
    }
}

/// Drives the real inbox and the model through the same script, popping
/// frames through `frame_done` so processed counts are exact, then drains
/// both and returns (model, real processed seqs, real stats).
fn run_script(capacity: usize, policy: LatePolicy, ops: &[u8]) -> (Model, Vec<u64>, IngestStats) {
    let hub = IngestHub::new(
        IngestConfig::new()
            .with_inbox_capacity(capacity)
            .with_late_policy(policy),
    );
    let (tx, rx) = hub.channel::<u64>().unwrap();
    let mut model = Model::new(capacity, policy);
    let mut processed = Vec::new();
    for &op in ops {
        if op < 3 {
            tx.push(model.next_seq);
            model.push();
        } else {
            if let Some(frame) = rx.try_pop() {
                processed.push(frame.seq);
                rx.frame_done(frame, false);
            }
            model.pop();
        }
    }
    // Drain: close the stream and process the backlog.
    tx.close();
    while let Some(frame) = rx.try_pop() {
        processed.push(frame.seq);
        rx.frame_done(frame, false);
        model.pop();
    }
    let stats = rx.stats();
    (model, processed, stats)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Satellite contract: under drop-oldest the retained frame sequence is
    /// a suffix-respecting subsequence of what was offered, and drops are
    /// exactly `offered − processed`.
    #[test]
    fn drop_oldest_retains_suffix_respecting_subsequence(
        capacity in 1usize..6,
        ops in prop::collection::vec(0u8..5, 3..120),
    ) {
        let (model, processed, stats) = run_script(capacity, LatePolicy::DropOldest, &ops);

        // Lockstep with the reference model, element by element.
        prop_assert_eq!(&processed, &model.popped);
        prop_assert_eq!(stats.offered, model.offered);
        prop_assert_eq!(stats.dropped_oldest, model.dropped);
        prop_assert_eq!(stats.dropped_newest, 0);

        // Strictly increasing: no reordering, no duplicates — every gap is
        // a drop of a then-oldest frame, so later frames never precede
        // earlier ones (the subsequence respects suffix order).
        for pair in processed.windows(2) {
            prop_assert!(pair[0] < pair[1], "out of order: {:?}", pair);
        }
        // Exact accounting once drained: every offered frame was either
        // processed or counted as dropped, none lost, none double-counted.
        prop_assert_eq!(stats.processed, processed.len() as u64);
        prop_assert_eq!(stats.dropped(), stats.offered - stats.processed);
        // Suffix-respecting: the processed subsequence ends at the newest
        // offered frame (drop-oldest never discards the freshest work).
        if stats.offered > 0 {
            prop_assert_eq!(*processed.last().unwrap(), stats.offered - 1);
        }
        prop_assert_eq!(stats.latency.count(), stats.processed);
    }

    /// Drop-newest is the mirror image: the queue preserves the oldest
    /// backlog and rejects fresh frames, with identical exact accounting.
    #[test]
    fn drop_newest_retains_prefix_and_accounts_exactly(
        capacity in 1usize..6,
        ops in prop::collection::vec(0u8..5, 3..120),
    ) {
        let (model, processed, stats) = run_script(capacity, LatePolicy::DropNewest, &ops);
        prop_assert_eq!(&processed, &model.popped);
        prop_assert_eq!(stats.offered, model.offered);
        prop_assert_eq!(stats.dropped_newest, model.dropped);
        prop_assert_eq!(stats.dropped_oldest, 0);
        for pair in processed.windows(2) {
            prop_assert!(pair[0] < pair[1]);
        }
        // Accepted seqs are gap-free under drop-newest: rejected frames
        // never entered the queue, so the processed list is exactly
        // 0..processed.len().
        for (i, &seq) in processed.iter().enumerate() {
            prop_assert_eq!(seq, i as u64);
        }
        prop_assert_eq!(stats.dropped(), stats.offered - stats.processed);
    }
}

// ---------------------------------------------------------------------------
// 2. Admission rejection is side-effect-free
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct Heavy {
    bytes: usize,
    steps: usize,
}

impl Session for Heavy {
    type Report = usize;

    fn step(&mut self) -> SessionStatus {
        self.steps += 1;
        SessionStatus::Finished
    }

    fn finish(self) -> usize {
        self.steps
    }

    fn resident_bytes(&self) -> usize {
        self.bytes
    }
}

#[test]
fn admission_rejection_leaves_scheduler_untouched() {
    let dir = std::env::temp_dir().join(format!("rtgs-admit-{}", std::process::id()));
    let hub = IngestHub::new(IngestConfig::new().with_max_sessions(2));
    let mut scheduler = Serve::builder()
        .threads(1)
        .ingest(&hub)
        .eviction(EvictionPolicy::new(&dir).with_max_resident_bytes(1_000))
        .build::<Heavy>();

    scheduler
        .try_admit(
            "small",
            Heavy {
                bytes: 100,
                steps: 0,
            },
        )
        .expect("within every budget");

    // Rejected for size: resident_bytes alone exceeds the byte budget.
    let (err, returned) = scheduler
        .try_admit(
            "huge",
            Heavy {
                bytes: 5_000,
                steps: 0,
            },
        )
        .unwrap_err();
    assert!(
        matches!(
            err,
            AdmissionError::ResidentBytes {
                limit: 1_000,
                requested: 5_000,
                resident: 100,
            }
        ),
        "wrong rejection reason: {err}"
    );
    // The session comes back intact...
    assert_eq!(returned.bytes, 5_000);
    assert_eq!(returned.steps, 0);
    // ...and the scheduler is exactly as before the attempt.
    assert_eq!(scheduler.session_count(), 1);

    // Fill the hub's session cap, then watch the cap reject.
    scheduler
        .try_admit(
            "second",
            Heavy {
                bytes: 100,
                steps: 0,
            },
        )
        .expect("cap is 2");
    let (err, _returned) = scheduler
        .try_admit(
            "third",
            Heavy {
                bytes: 100,
                steps: 0,
            },
        )
        .unwrap_err();
    assert!(matches!(
        err,
        AdmissionError::SessionLimit {
            limit: 2,
            admitted: 2
        }
    ));
    assert_eq!(scheduler.session_count(), 2);

    // The run serves exactly the admitted sessions, unperturbed.
    let outcomes = scheduler.run();
    assert_eq!(outcomes.len(), 2);
    assert!(outcomes.iter().all(|o| o.stats.completed));
    assert_eq!(outcomes[0].stats.label, "small");
    assert_eq!(outcomes[1].stats.label, "second");
}

/// A session whose footprint can grow after admission (shared cell so the
/// test mutates it while the scheduler owns the session).
#[derive(Debug)]
struct Growing {
    bytes: std::sync::Arc<std::sync::atomic::AtomicUsize>,
}

impl Session for Growing {
    type Report = ();

    fn step(&mut self) -> SessionStatus {
        SessionStatus::Finished
    }

    fn finish(self) {}

    fn resident_bytes(&self) -> usize {
        self.bytes.load(std::sync::atomic::Ordering::SeqCst)
    }
}

/// Admission polls *live* resident bytes: a session that grew past its
/// at-admission estimate shrinks the headroom later admits see, so the
/// next admit is rejected even though the original estimates would fit.
#[test]
fn admission_counts_live_resident_bytes_not_estimates() {
    let dir = std::env::temp_dir().join(format!("rtgs-admit-live-{}", std::process::id()));
    let mut scheduler = Serve::builder()
        .threads(1)
        .eviction(EvictionPolicy::new(&dir).with_max_resident_bytes(1_000))
        .build::<Growing>();

    let bytes = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(200));
    scheduler
        .try_admit(
            "grows",
            Growing {
                bytes: std::sync::Arc::clone(&bytes),
            },
        )
        .expect("200 of 1000 fits");

    // At the original estimate a 700-byte sibling would fit (200 + 700 <=
    // 1000). But the session has since grown to 600 resident bytes...
    bytes.store(600, std::sync::atomic::Ordering::SeqCst);
    let (err, _returned) = scheduler
        .try_admit(
            "late",
            Growing {
                bytes: std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(700)),
            },
        )
        .unwrap_err();
    assert!(
        matches!(
            err,
            AdmissionError::ResidentBytes {
                limit: 1_000,
                requested: 700,
                resident: 600,
            }
        ),
        "wrong rejection reason: {err}"
    );

    // A sibling that fits beside the *live* footprint is still admitted.
    scheduler
        .try_admit(
            "fits",
            Growing {
                bytes: std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(300)),
            },
        )
        .expect("600 + 300 <= 1000");
    assert_eq!(scheduler.session_count(), 2);
    let outcomes = scheduler.run();
    assert_eq!(outcomes.len(), 2);
}

// ---------------------------------------------------------------------------
// 3. Idle tenants consume no pool jobs (idle-spin regression)
// ---------------------------------------------------------------------------

/// Minimal open-loop session: pops one frame per step, finishes when its
/// channel is drained.
struct InboxSession {
    inbox: FrameInbox<u64>,
    processed: u64,
}

impl Session for InboxSession {
    type Report = u64;

    fn ready(&self) -> bool {
        self.inbox.has_work() || self.inbox.is_drained()
    }

    fn step(&mut self) -> SessionStatus {
        match self.inbox.try_pop() {
            Some(frame) => {
                self.inbox.frame_done(frame, false);
                self.processed += 1;
                if self.inbox.is_drained() {
                    SessionStatus::Finished
                } else {
                    SessionStatus::Running
                }
            }
            None if self.inbox.is_drained() => SessionStatus::Finished,
            None => SessionStatus::Idle,
        }
    }

    fn finish(self) -> u64 {
        self.processed
    }

    fn ingest_stats(&self) -> Option<IngestStats> {
        Some(self.inbox.stats())
    }
}

#[test]
fn idle_tenant_consumes_no_pool_jobs() {
    // A dedicated pool so the job counter is exclusively this test's.
    let pool = Arc::new(ThreadPool::new(2));
    let hub = IngestHub::new(IngestConfig::new().with_inbox_capacity(16));

    let (busy_tx, busy_rx) = hub.channel::<u64>().unwrap();
    let (idle_tx, idle_rx) = hub.channel::<u64>().unwrap();

    // The busy tenant has 5 frames queued up front; its stream then ends.
    for v in 0..5 {
        busy_tx.push(v);
    }
    busy_tx.close();
    // The idle tenant's stream stays open (and empty) until well after the
    // busy tenant finished, then closes without ever delivering a frame.
    let closer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(40));
        idle_tx.close();
    });

    let mut scheduler = Serve::builder()
        .pool(Arc::clone(&pool))
        .ingest(&hub)
        .build::<InboxSession>();
    scheduler.add_session(
        "busy",
        InboxSession {
            inbox: busy_rx,
            processed: 0,
        },
    );
    scheduler.add_session(
        "idle",
        InboxSession {
            inbox: idle_rx,
            processed: 0,
        },
    );
    let outcomes = scheduler.run();
    closer.join().unwrap();

    let busy = &outcomes[0];
    let idle = &outcomes[1];
    assert!(busy.stats.completed && idle.stats.completed);
    assert_eq!(busy.report, 5);
    assert_eq!(busy.stats.steps, 5, "one step per queued frame");
    assert_eq!(idle.report, 0);
    assert_eq!(idle.stats.steps, 1, "only the end-of-stream step");
    assert!(
        idle.stats.idle_rounds >= 4,
        "the idle tenant parked while the busy one served ({} idle rounds)",
        idle.stats.idle_rounds
    );

    // The regression: pool jobs count only real steps (5 busy + 1 idle
    // end-of-stream). Before readiness gating, every round stepped every
    // session, so the idle tenant burned a job per round.
    let jobs = pool.stats().jobs;
    assert_eq!(
        jobs, 6,
        "idle tenant consumed pool jobs (total {jobs}, expected 6)"
    );

    // Ingest stats surfaced into serving outcomes.
    let busy_ingest = busy.stats.ingest.as_ref().unwrap();
    assert_eq!(busy_ingest.offered, 5);
    assert_eq!(busy_ingest.processed, 5);
    assert_eq!(busy_ingest.dropped(), 0);
    let idle_ingest = idle.stats.ingest.as_ref().unwrap();
    assert_eq!(idle_ingest.offered, 0);
}
