//! One front door for serving: [`Serve::builder`].
//!
//! The serving surface accreted entry points as features landed —
//! `serve_sessions`, `serve_sessions_with_eviction`,
//! `SessionScheduler::{new, with_pool, set_eviction_policy,
//! set_snapshot_writer, set_ingest}` — each a different spelling of "run
//! these sessions with this configuration". [`ServeBuilder`] collapses them
//! into one chain:
//!
//! ```
//! use rtgs_runtime::{Serve, Session, SessionStatus};
//!
//! struct Two(usize);
//! impl Session for Two {
//!     type Report = usize;
//!     fn step(&mut self) -> SessionStatus {
//!         self.0 += 1;
//!         if self.0 >= 2 { SessionStatus::Finished } else { SessionStatus::Running }
//!     }
//!     fn finish(self) -> usize { self.0 }
//! }
//!
//! let outcomes = Serve::builder()
//!     .threads(2)
//!     .run(vec![("a".to_string(), Two(0)), ("b".to_string(), Two(0))]);
//! assert_eq!(outcomes.len(), 2);
//! assert!(outcomes.iter().all(|o| o.report == 2));
//! ```
//!
//! Eviction, open-loop ingestion, and telemetry snapshots are opt-in rungs
//! on the same chain: `.eviction(policy)`, `.ingest(&hub)`,
//! `.snapshot_writer(writer)`. The old free functions in `rtgs-slam`
//! remain as deprecated wrappers delegating here.

use crate::ingest::IngestHub;
use crate::pool::ThreadPool;
use crate::scheduler::{
    EvictionPolicy, ReplicationOptions, Session, SessionOutcome, SessionScheduler,
};
use rtgs_telemetry::SnapshotWriter;
use std::sync::Arc;

/// Namespace for the serving entry point; see [`Serve::builder`].
#[derive(Debug)]
pub struct Serve;

impl Serve {
    /// Starts a serving configuration chain.
    pub fn builder() -> ServeBuilder {
        ServeBuilder::new()
    }
}

/// Builder for a serving run: threads/pool, eviction, ingestion, telemetry
/// snapshots — finished with [`build`](ServeBuilder::build) (a configured
/// [`SessionScheduler`]) or [`run`](ServeBuilder::run) (add sessions and
/// serve to completion).
///
/// `#[non_exhaustive]`: construct via [`Serve::builder`], so future serving
/// knobs are non-breaking.
#[must_use = "a ServeBuilder does nothing until .run() or .build()"]
#[non_exhaustive]
#[derive(Default)]
pub struct ServeBuilder {
    threads: usize,
    pool: Option<Arc<ThreadPool>>,
    eviction: Option<EvictionPolicy>,
    ingest: Option<IngestHub>,
    snapshot_writer: Option<SnapshotWriter>,
    replicate: Option<ReplicationOptions>,
}

impl ServeBuilder {
    fn new() -> Self {
        Self::default()
    }

    /// Serves over the shared pool with `threads` workers (`0`, the
    /// default, means machine size). Ignored when an explicit
    /// [`pool`](Self::pool) is set.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Serves over an explicit pool (takes precedence over
    /// [`threads`](Self::threads)).
    pub fn pool(mut self, pool: Arc<ThreadPool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Attaches a hibernate-to-disk [`EvictionPolicy`].
    pub fn eviction(mut self, policy: EvictionPolicy) -> Self {
        self.eviction = Some(policy);
        self
    }

    /// Attaches an open-loop [`IngestHub`]: the scheduler parks on the
    /// hub's work signal when no session has a frame queued, and
    /// [`SessionScheduler::try_admit`] enforces the hub's session cap.
    pub fn ingest(mut self, hub: &IngestHub) -> Self {
        self.ingest = Some(hub.clone());
        self
    }

    /// Attaches a periodic telemetry-snapshot writer (exported between
    /// rounds and once on shutdown).
    pub fn snapshot_writer(mut self, writer: SnapshotWriter) -> Self {
        self.snapshot_writer = Some(writer);
        self
    }

    /// Configures replication behavior for replicating sessions (see
    /// [`ReplicationOptions`]). Streams of replicating sessions are drained
    /// at graceful shutdown even without this rung — attach it only to
    /// change the defaults.
    pub fn replicate(mut self, options: ReplicationOptions) -> Self {
        self.replicate = Some(options);
        self
    }

    /// Finishes the chain into a configured [`SessionScheduler`] with no
    /// sessions yet — the escape hatch when the caller needs
    /// [`try_admit`](SessionScheduler::try_admit), a
    /// [`shutdown_handle`](SessionScheduler::shutdown_handle), or staged
    /// session registration before serving.
    pub fn build<S: Session>(self) -> SessionScheduler<S> {
        let mut scheduler = match self.pool {
            Some(pool) => SessionScheduler::with_pool(pool),
            None => SessionScheduler::new(self.threads),
        };
        if let Some(policy) = self.eviction {
            scheduler.set_eviction_policy(policy);
        }
        if let Some(hub) = &self.ingest {
            scheduler.set_ingest(hub);
        }
        if let Some(writer) = self.snapshot_writer {
            scheduler.set_snapshot_writer(writer);
        }
        if let Some(options) = self.replicate {
            scheduler.set_replication(options);
        }
        scheduler
    }

    /// Registers the labelled sessions and serves them to completion,
    /// returning one outcome per session in input order.
    pub fn run<S: Session>(self, sessions: Vec<(String, S)>) -> Vec<SessionOutcome<S::Report>> {
        let mut scheduler = self.build();
        for (label, session) in sessions {
            scheduler.add_session(label, session);
        }
        scheduler.run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::IngestConfig;
    use crate::scheduler::SessionStatus;

    struct Three(usize);

    impl Session for Three {
        type Report = usize;

        fn step(&mut self) -> SessionStatus {
            self.0 += 1;
            if self.0 >= 3 {
                SessionStatus::Finished
            } else {
                SessionStatus::Running
            }
        }

        fn finish(self) -> usize {
            self.0
        }
    }

    #[test]
    fn builder_runs_sessions_like_a_bare_scheduler() {
        let outcomes = Serve::builder().threads(2).run(vec![
            ("a".to_string(), Three(0)),
            ("b".to_string(), Three(0)),
        ]);
        assert_eq!(outcomes.len(), 2);
        for o in &outcomes {
            assert!(o.stats.completed);
            assert_eq!(o.stats.steps, 3);
            assert_eq!(o.report, 3);
            assert!(o.stats.ingest.is_none(), "closed-loop session");
        }
    }

    #[test]
    fn build_exposes_admission_and_shutdown() {
        let hub = IngestHub::new(IngestConfig::new().with_max_sessions(1));
        let mut scheduler = Serve::builder().threads(1).ingest(&hub).build::<Three>();
        let _handle = scheduler.shutdown_handle();
        assert!(scheduler.try_admit("one", Three(0)).is_ok());
        let err = scheduler.try_admit("two", Three(0)).unwrap_err();
        assert!(matches!(
            err.0,
            crate::ingest::AdmissionError::SessionLimit { limit: 1, .. }
        ));
        assert_eq!(scheduler.session_count(), 1);
        let outcomes = scheduler.run();
        assert_eq!(outcomes.len(), 1);
        assert_eq!(outcomes[0].report, 3);
    }

    #[test]
    fn explicit_pool_takes_precedence() {
        let pool = crate::backend::shared_pool(2);
        let outcomes = Serve::builder()
            .pool(std::sync::Arc::clone(&pool))
            .threads(999) // ignored
            .run(vec![("p".to_string(), Three(0))]);
        assert_eq!(outcomes[0].report, 3);
    }
}
