//! Open-loop frame ingestion: bounded per-session inboxes, admission
//! control, and backpressure/drop policies — the front-end that turns the
//! closed-loop scheduler into a serving system.
//!
//! Closed-loop serving (every tenant always has its next frame ready) can
//! only measure *throughput*. Production SLAM traffic is **open-loop**:
//! cameras emit frames at their own rate whether or not the server keeps up,
//! so the metrics that matter are queueing latency under offered load, drop
//! rate, and sessions-per-core at a fixed SLO. This module provides the
//! open-loop substrate, std-only and channel-based:
//!
//! - an [`IngestHub`] owns the fleet-wide budgets and hands out per-session
//!   channels. Opening a channel is **admission**: it can fail with a typed
//!   [`AdmissionError`] when the session cap or the inbox-memory budget
//!   would be exceeded — loud rejection at the front door instead of silent
//!   degradation inside;
//! - a [`FrameProducer`] is the tenant half: it pushes timestamped frames
//!   into a bounded inbox, with a configurable [`LatePolicy`] deciding what
//!   happens when the inbox is full (block the producer, drop the oldest
//!   queued frame, or reject the incoming one). Every drop is counted,
//!   per-inbox and in the global telemetry registry;
//! - a [`FrameInbox`] is the scheduler half: the session pops a frame, does
//!   the work, and reports [`FrameInbox::frame_done`], which records the
//!   frame's full sojourn (queueing + service) into a latency histogram.
//!   An inbox knows whether it [`has_work`](FrameInbox::has_work), so the
//!   scheduler can *park* idle sessions instead of burning round-robin
//!   slots on them, and a [`WorkSignal`] wakes the scheduler when any
//!   producer delivers into an empty fleet.
//!
//! Frames are timestamped at push ([`IngestFrame::enqueued`]); the latency
//! recorded at `frame_done` is therefore the end-to-end figure an open-loop
//! load generator needs for p50/p99/p999 at a given offered rate.

use rtgs_telemetry::flight::hops;
use rtgs_telemetry::{
    emit_flow_span, journal_record, ns_since_epoch, Counter, EventKind, Gauge, Histogram,
    HistogramSnapshot, TraceCtx,
};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// What happens to an incoming frame when its session's inbox is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LatePolicy {
    /// Block the producer until the session drains a slot (lossless
    /// backpressure; couples the producer's rate to the server's).
    Block,
    /// Evict the oldest queued frame to make room (freshness-first: a SLAM
    /// tracker prefers the newest observation over a stale backlog). The
    /// default.
    #[default]
    DropOldest,
    /// Reject the incoming frame and keep the queue (backlog-first).
    DropNewest,
}

/// Configuration for the open-loop ingestion front-end.
///
/// `#[non_exhaustive]`: construct via [`IngestConfig::new`] (or
/// `Default`) plus the `with_*` builders, so future knobs are non-breaking.
#[derive(Debug, Clone)]
#[must_use = "attach the config to an IngestHub (or ServeBuilder::ingest)"]
#[non_exhaustive]
pub struct IngestConfig {
    /// Bounded inbox depth per session (frames). Values below 1 are treated
    /// as 1.
    pub inbox_capacity: usize,
    /// Full-inbox behavior.
    pub late_policy: LatePolicy,
    /// Estimated bytes per queued frame, used by the inbox-memory admission
    /// budget (`inbox_capacity * frame_bytes_hint` is reserved per channel).
    pub frame_bytes_hint: usize,
    /// Fleet-wide cap on reserved inbox memory (`None` = unlimited).
    pub max_inbox_bytes: Option<usize>,
    /// Cap on concurrently admitted sessions (`None` = unlimited).
    pub max_sessions: Option<usize>,
}

impl Default for IngestConfig {
    fn default() -> Self {
        Self {
            inbox_capacity: 8,
            late_policy: LatePolicy::default(),
            frame_bytes_hint: 64,
            max_inbox_bytes: None,
            max_sessions: None,
        }
    }
}

impl IngestConfig {
    /// The default config: 8-deep inboxes, drop-oldest, no admission caps.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the per-session inbox depth.
    pub fn with_inbox_capacity(mut self, frames: usize) -> Self {
        self.inbox_capacity = frames.max(1);
        self
    }

    /// Sets the full-inbox behavior.
    pub fn with_late_policy(mut self, policy: LatePolicy) -> Self {
        self.late_policy = policy;
        self
    }

    /// Sets the per-frame byte estimate for the inbox-memory budget.
    pub fn with_frame_bytes_hint(mut self, bytes: usize) -> Self {
        self.frame_bytes_hint = bytes;
        self
    }

    /// Caps fleet-wide reserved inbox memory.
    pub fn with_max_inbox_bytes(mut self, bytes: usize) -> Self {
        self.max_inbox_bytes = Some(bytes);
        self
    }

    /// Caps concurrently admitted sessions.
    pub fn with_max_sessions(mut self, sessions: usize) -> Self {
        self.max_sessions = Some(sessions);
        self
    }
}

/// Why a session was refused at admission. Every variant carries the budget
/// that tripped, so rejections are actionable, not stringly mysterious.
#[derive(Debug)]
#[non_exhaustive]
pub enum AdmissionError {
    /// The hub's concurrent-session cap is reached.
    SessionLimit {
        /// Configured cap.
        limit: usize,
        /// Sessions currently admitted.
        admitted: usize,
    },
    /// Admitting the session would exceed the eviction policy's byte
    /// budget: either its own footprint alone is over the budget, or it
    /// does not fit beside the **live** residency of already-admitted
    /// sessions (polled at admission time, so sessions that grew past
    /// their at-admission estimates count at their current size).
    ResidentBytes {
        /// Configured resident-byte budget.
        limit: usize,
        /// Bytes the session asked for.
        requested: usize,
        /// Live resident bytes of already-admitted sessions at the time of
        /// the attempt.
        resident: usize,
    },
    /// Reserving this channel's inbox memory would exceed the hub budget.
    InboxMemory {
        /// Configured inbox-memory budget.
        limit: usize,
        /// Bytes already reserved by admitted channels.
        reserved: usize,
        /// Bytes this channel would reserve.
        requested: usize,
    },
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::SessionLimit { limit, admitted } => write!(
                f,
                "admission rejected: session cap reached ({admitted} admitted, limit {limit})"
            ),
            Self::ResidentBytes {
                limit,
                requested,
                resident,
            } => write!(
                f,
                "admission rejected: session needs {requested} resident bytes, \
                 {resident} of {limit} already live"
            ),
            Self::InboxMemory {
                limit,
                reserved,
                requested,
            } => write!(
                f,
                "admission rejected: inbox reservation of {requested} bytes exceeds budget \
                 ({reserved} of {limit} already reserved)"
            ),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Result of a [`FrameProducer::push`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// The frame was enqueued.
    Accepted,
    /// The frame was enqueued after evicting the oldest queued frame
    /// ([`LatePolicy::DropOldest`]).
    AcceptedDroppedOldest,
    /// The frame was rejected, the queue kept ([`LatePolicy::DropNewest`]).
    RejectedNewest,
    /// The inbox is closed; the frame was discarded.
    Closed,
}

impl PushOutcome {
    /// Whether the pushed frame made it into the queue.
    pub fn is_accepted(self) -> bool {
        matches!(self, Self::Accepted | Self::AcceptedDroppedOldest)
    }
}

/// A timestamped frame in flight: sequence number, arrival instant, payload.
#[derive(Debug)]
pub struct IngestFrame<T> {
    /// Per-channel sequence number, assigned at push (0-based, gap-free on
    /// the producer side — gaps on the consumer side are drops).
    pub seq: u64,
    /// When the producer delivered the frame (sojourn time is measured from
    /// here).
    pub enqueued: Instant,
    /// Flight-recorder trace context, minted at push. Carried through the
    /// pipeline, checkpoint capture, and the replication wire so one frame's
    /// lifecycle stitches into a single cross-process trace.
    pub trace: TraceCtx,
    /// The frame payload.
    pub payload: T,
}

/// Wakes the scheduler when any producer delivers into an idle fleet.
///
/// A monotone version counter under a mutex plus a condvar: producers
/// [`notify`](WorkSignal::notify) after every delivery, the scheduler
/// [`wait_past`](WorkSignal::wait_past) a version it has already seen. The
/// version makes the handoff race-free: a notification between "scan found
/// nothing" and "wait" is never lost.
#[derive(Debug, Default)]
pub struct WorkSignal {
    version: Mutex<u64>,
    cond: Condvar,
}

impl WorkSignal {
    /// A fresh signal at version 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current version (capture before scanning for work).
    pub fn version(&self) -> u64 {
        *self.version.lock().unwrap()
    }

    /// Bumps the version and wakes all waiters.
    pub fn notify(&self) {
        let mut v = self.version.lock().unwrap();
        *v += 1;
        self.cond.notify_all();
    }

    /// Blocks until the version advances past `seen` or `timeout` elapses;
    /// returns the version observed on wake.
    pub fn wait_past(&self, seen: u64, timeout: Duration) -> u64 {
        let guard = self.version.lock().unwrap();
        let (guard, _) = self
            .cond
            .wait_timeout_while(guard, timeout, |v| *v <= seen)
            .unwrap();
        *guard
    }
}

/// Per-inbox counters shared by the producer and consumer halves.
struct InboxCounters {
    offered: AtomicU64,
    processed: AtomicU64,
    dropped_oldest: AtomicU64,
    dropped_newest: AtomicU64,
    blocked: AtomicU64,
    degraded: AtomicU64,
    max_depth: AtomicU64,
}

impl InboxCounters {
    fn new() -> Self {
        Self {
            offered: AtomicU64::new(0),
            processed: AtomicU64::new(0),
            dropped_oldest: AtomicU64::new(0),
            dropped_newest: AtomicU64::new(0),
            blocked: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            max_depth: AtomicU64::new(0),
        }
    }

    fn record_depth(&self, depth: usize) {
        self.max_depth.fetch_max(depth as u64, Ordering::Relaxed);
    }
}

struct InboxState<T> {
    queue: VecDeque<IngestFrame<T>>,
    next_seq: u64,
    closed: bool,
}

/// State shared by a channel's producer and inbox halves.
struct Shared<T> {
    state: Mutex<InboxState<T>>,
    /// Signalled when a slot frees up (for [`LatePolicy::Block`] producers)
    /// and on close.
    space: Condvar,
    capacity: usize,
    policy: LatePolicy,
    counters: InboxCounters,
    /// Hub-unique channel id, stamped into black-box journal events so
    /// post-mortem bundles attribute drops/sheds to a session.
    channel_id: u32,
    /// End-to-end per-frame latency (push → `frame_done`), nanoseconds.
    latency: Histogram,
    /// Live producer clones; the channel auto-closes when the last drops.
    producers: AtomicUsize,
    hub: Arc<HubInner>,
    /// Inbox-memory reservation released when the channel is fully dropped.
    reserved_bytes: usize,
}

impl<T> Shared<T> {
    fn close(&self) {
        let mut st = self.state.lock().unwrap();
        if !st.closed {
            st.closed = true;
            drop(st);
            // Blocked producers must observe the close, and a parked
            // scheduler must wake to run the now-drained session's final
            // (Finished) step.
            self.space.notify_all();
            self.hub.signal.notify();
        }
    }
}

impl<T> Drop for Shared<T> {
    fn drop(&mut self) {
        // Frames abandoned in the queue leave the fleet-depth gauge.
        if let Ok(st) = self.state.get_mut() {
            self.hub.metrics.depth.add(-(st.queue.len() as i64));
        }
        self.hub
            .reserved_bytes
            .fetch_sub(self.reserved_bytes, Ordering::SeqCst);
        self.hub.admitted.fetch_sub(1, Ordering::SeqCst);
    }
}

/// The tenant half of a session channel: pushes timestamped frames.
///
/// Cloneable and `Send`; the channel closes when [`close`](Self::close) is
/// called or the last clone drops.
pub struct FrameProducer<T> {
    shared: Arc<Shared<T>>,
}

impl<T> std::fmt::Debug for FrameProducer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrameProducer")
            .field("offered", &self.offered())
            .finish_non_exhaustive()
    }
}

impl<T> Clone for FrameProducer<T> {
    fn clone(&self) -> Self {
        self.shared.producers.fetch_add(1, Ordering::SeqCst);
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for FrameProducer<T> {
    fn drop(&mut self) {
        if self.shared.producers.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.shared.close();
        }
    }
}

impl<T> FrameProducer<T> {
    /// Pushes a frame timestamped now. See [`push_at`](Self::push_at).
    pub fn push(&self, payload: T) -> PushOutcome {
        self.push_at(payload, Instant::now())
    }

    /// Pushes a frame with an explicit arrival timestamp (an open-loop load
    /// generator backdates `enqueued` to the *intended* arrival instant so
    /// measured latency includes scheduling delay on the producer side).
    ///
    /// Full-inbox behavior follows the hub's [`LatePolicy`]; every outcome
    /// is counted in the channel's [`IngestStats`] and the global registry.
    pub fn push_at(&self, payload: T, enqueued: Instant) -> PushOutcome {
        let sh = &self.shared;
        let mut st = sh.state.lock().unwrap();
        let outcome = loop {
            if st.closed {
                return PushOutcome::Closed;
            }
            if st.queue.len() < sh.capacity {
                break PushOutcome::Accepted;
            }
            match sh.policy {
                LatePolicy::Block => {
                    sh.counters.blocked.fetch_add(1, Ordering::Relaxed);
                    st = sh.space.wait(st).unwrap();
                }
                LatePolicy::DropOldest => {
                    if let Some(old) = st.queue.pop_front() {
                        journal_record(
                            EventKind::FrameDrop,
                            sh.channel_id,
                            old.trace.trace_id,
                            old.seq,
                            st.queue.len() as u64,
                        );
                    }
                    sh.counters.dropped_oldest.fetch_add(1, Ordering::Relaxed);
                    sh.hub.metrics.dropped_oldest.incr();
                    break PushOutcome::AcceptedDroppedOldest;
                }
                LatePolicy::DropNewest => {
                    sh.counters.offered.fetch_add(1, Ordering::Relaxed);
                    sh.counters.dropped_newest.fetch_add(1, Ordering::Relaxed);
                    sh.hub.metrics.offered.incr();
                    sh.hub.metrics.dropped_newest.incr();
                    journal_record(
                        EventKind::FrameDrop,
                        sh.channel_id,
                        0,
                        st.next_seq,
                        st.queue.len() as u64,
                    );
                    return PushOutcome::RejectedNewest;
                }
            }
        };
        let seq = st.next_seq;
        st.next_seq += 1;
        st.queue.push_back(IngestFrame {
            seq,
            enqueued,
            trace: TraceCtx::fresh(),
            payload,
        });
        let depth = st.queue.len();
        drop(st);
        sh.counters.offered.fetch_add(1, Ordering::Relaxed);
        sh.counters.record_depth(depth);
        sh.hub.metrics.offered.incr();
        if matches!(outcome, PushOutcome::Accepted) {
            sh.hub.metrics.depth.add(1);
        }
        sh.hub.signal.notify();
        outcome
    }

    /// Closes the channel: the inbox drains its backlog, then reports
    /// end-of-stream. Idempotent.
    pub fn close(&self) {
        self.shared.close();
    }

    /// Frames offered so far on this channel (accepted + dropped).
    pub fn offered(&self) -> u64 {
        self.shared.counters.offered.load(Ordering::Relaxed)
    }
}

/// The scheduler half of a session channel: pops frames, reports results.
pub struct FrameInbox<T> {
    shared: Arc<Shared<T>>,
}

impl<T> std::fmt::Debug for FrameInbox<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrameInbox")
            .field("depth", &self.depth())
            .field("closed", &self.is_closed())
            .finish_non_exhaustive()
    }
}

impl<T> FrameInbox<T> {
    /// Pops the next queued frame, if any. Never blocks.
    pub fn try_pop(&self) -> Option<IngestFrame<T>> {
        let mut st = self.shared.state.lock().unwrap();
        let frame = st.queue.pop_front();
        drop(st);
        if frame.is_some() {
            self.shared.hub.metrics.depth.add(-1);
            // A slot opened: wake one blocked producer.
            self.shared.space.notify_one();
        }
        frame
    }

    /// Frames currently queued.
    pub fn depth(&self) -> usize {
        self.shared.state.lock().unwrap().queue.len()
    }

    /// Hub-unique id of this channel, used to attribute black-box journal
    /// events (drops, sheds) to a session in post-mortem bundles.
    pub fn channel_id(&self) -> u32 {
        self.shared.channel_id
    }

    /// Whether at least one frame is queued.
    pub fn has_work(&self) -> bool {
        !self.shared.state.lock().unwrap().queue.is_empty()
    }

    /// Whether the producer side has closed the channel.
    pub fn is_closed(&self) -> bool {
        self.shared.state.lock().unwrap().closed
    }

    /// Whether the stream is over: closed *and* the backlog is empty.
    pub fn is_drained(&self) -> bool {
        let st = self.shared.state.lock().unwrap();
        st.closed && st.queue.is_empty()
    }

    /// Reports a popped frame as processed, recording its end-to-end sojourn
    /// (push → now) in the channel's latency histogram. `degraded` marks
    /// frames served on the downsampled shed path. Returns the recorded
    /// latency in nanoseconds.
    pub fn frame_done(&self, frame: IngestFrame<T>, degraded: bool) -> u64 {
        let ns = frame.enqueued.elapsed().as_nanos() as u64;
        let c = &self.shared.counters;
        c.processed.fetch_add(1, Ordering::Relaxed);
        if degraded {
            c.degraded.fetch_add(1, Ordering::Relaxed);
            self.shared.hub.metrics.degraded.incr();
        }
        self.shared.latency.record(ns);
        self.shared.hub.metrics.processed.incr();
        self.shared.hub.metrics.frame_ns.record(ns);
        // First hop of the frame's flight trace: the full ingest sojourn
        // (queueing + service), with an outgoing flow edge into the tracker.
        emit_flow_span(
            "ingest.frame",
            "ingest",
            ns_since_epoch(frame.enqueued),
            ns,
            frame.seq,
            frame.trace.trace_id,
            hops::INGEST,
        );
        ns
    }

    /// Snapshot of this channel's ingestion counters and latency
    /// distribution.
    pub fn stats(&self) -> IngestStats {
        let c = &self.shared.counters;
        IngestStats {
            offered: c.offered.load(Ordering::Relaxed),
            processed: c.processed.load(Ordering::Relaxed),
            dropped_oldest: c.dropped_oldest.load(Ordering::Relaxed),
            dropped_newest: c.dropped_newest.load(Ordering::Relaxed),
            blocked: c.blocked.load(Ordering::Relaxed),
            degraded: c.degraded.load(Ordering::Relaxed),
            max_depth: c.max_depth.load(Ordering::Relaxed),
            latency: self.shared.latency.snapshot(),
        }
    }
}

/// Snapshot of one channel's open-loop counters, carried into
/// `SessionStats::ingest` so serving outcomes report drops and sheds
/// alongside step latency.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct IngestStats {
    /// Frames the producer offered (accepted + dropped).
    pub offered: u64,
    /// Frames popped and reported done by the session.
    pub processed: u64,
    /// Queued frames evicted by [`LatePolicy::DropOldest`].
    pub dropped_oldest: u64,
    /// Incoming frames rejected by [`LatePolicy::DropNewest`].
    pub dropped_newest: u64,
    /// Times a [`LatePolicy::Block`] producer had to wait for a slot.
    pub blocked: u64,
    /// Frames served on the degraded (downsampled) shed path.
    pub degraded: u64,
    /// High-water inbox depth.
    pub max_depth: u64,
    /// End-to-end per-frame latency (queueing + service), nanoseconds.
    pub latency: HistogramSnapshot,
}

impl IngestStats {
    /// Total frames dropped under either policy.
    pub fn dropped(&self) -> u64 {
        self.dropped_oldest + self.dropped_newest
    }

    /// Dropped fraction of offered frames (0 when nothing was offered).
    pub fn drop_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.dropped() as f64 / self.offered as f64
        }
    }
}

/// Global-registry handles for fleet-wide ingestion metrics.
struct HubMetrics {
    offered: Arc<Counter>,
    processed: Arc<Counter>,
    dropped_oldest: Arc<Counter>,
    dropped_newest: Arc<Counter>,
    degraded: Arc<Counter>,
    /// Frames queued across all inboxes right now.
    depth: Arc<Gauge>,
    frame_ns: Arc<Histogram>,
}

impl HubMetrics {
    fn from_global() -> Self {
        let registry = rtgs_telemetry::global();
        Self {
            offered: registry.counter("ingest.offered"),
            processed: registry.counter("ingest.processed"),
            dropped_oldest: registry.counter("ingest.dropped_oldest"),
            dropped_newest: registry.counter("ingest.dropped_newest"),
            degraded: registry.counter("ingest.degraded_frames"),
            depth: registry.gauge("ingest.depth"),
            frame_ns: registry.histogram("ingest.frame_ns"),
        }
    }
}

struct HubInner {
    config: IngestConfig,
    signal: WorkSignal,
    admitted: AtomicUsize,
    reserved_bytes: AtomicUsize,
    /// Monotone channel-id source for journal attribution (never reused,
    /// unlike the admitted count).
    next_channel: AtomicU32,
    metrics: HubMetrics,
}

/// Fleet-wide ingestion front-end: owns the admission budgets and the
/// scheduler wake signal, and hands out per-session bounded channels.
///
/// Cheap to clone (an `Arc`); clone one half to the producer threads and
/// attach another to the scheduler via `ServeBuilder::ingest`.
#[derive(Clone)]
pub struct IngestHub {
    inner: Arc<HubInner>,
}

impl IngestHub {
    /// A hub enforcing `config`'s budgets.
    pub fn new(config: IngestConfig) -> Self {
        Self {
            inner: Arc::new(HubInner {
                config,
                signal: WorkSignal::new(),
                admitted: AtomicUsize::new(0),
                reserved_bytes: AtomicUsize::new(0),
                next_channel: AtomicU32::new(0),
                metrics: HubMetrics::from_global(),
            }),
        }
    }

    /// The hub's configuration.
    pub fn config(&self) -> &IngestConfig {
        &self.inner.config
    }

    /// Sessions currently admitted (channels open).
    pub fn admitted(&self) -> usize {
        self.inner.admitted.load(Ordering::SeqCst)
    }

    /// Inbox memory currently reserved by admitted channels.
    pub fn reserved_bytes(&self) -> usize {
        self.inner.reserved_bytes.load(Ordering::SeqCst)
    }

    /// The signal producers pulse on delivery; the scheduler parks on it
    /// when no session has work.
    pub fn signal(&self) -> &WorkSignal {
        &self.inner.signal
    }

    /// Admits one session: reserves its inbox memory and returns the
    /// channel's two halves.
    ///
    /// # Errors
    ///
    /// [`AdmissionError::SessionLimit`] when `max_sessions` channels are
    /// already open; [`AdmissionError::InboxMemory`] when reserving
    /// `inbox_capacity * frame_bytes_hint` would exceed `max_inbox_bytes`.
    /// Rejection leaves the hub's accounting untouched.
    pub fn channel<T: Send>(&self) -> Result<(FrameProducer<T>, FrameInbox<T>), AdmissionError> {
        let cfg = &self.inner.config;
        let capacity = cfg.inbox_capacity.max(1);
        let requested = capacity.saturating_mul(cfg.frame_bytes_hint);
        // Single-admitter convention: serving setup opens channels from one
        // thread, so check-then-reserve under SeqCst loads is race-free
        // there; concurrent admitters could only over-admit transiently.
        let admitted = self.inner.admitted.load(Ordering::SeqCst);
        if let Some(limit) = cfg.max_sessions {
            if admitted >= limit {
                journal_record(
                    EventKind::AdmissionReject,
                    self.inner.next_channel.load(Ordering::SeqCst),
                    0,
                    0,
                    admitted as u64,
                );
                return Err(AdmissionError::SessionLimit { limit, admitted });
            }
        }
        let reserved = self.inner.reserved_bytes.load(Ordering::SeqCst);
        if let Some(limit) = cfg.max_inbox_bytes {
            if reserved.saturating_add(requested) > limit {
                journal_record(
                    EventKind::AdmissionReject,
                    self.inner.next_channel.load(Ordering::SeqCst),
                    0,
                    0,
                    reserved as u64,
                );
                return Err(AdmissionError::InboxMemory {
                    limit,
                    reserved,
                    requested,
                });
            }
        }
        self.inner.admitted.fetch_add(1, Ordering::SeqCst);
        self.inner
            .reserved_bytes
            .fetch_add(requested, Ordering::SeqCst);
        let shared = Arc::new(Shared {
            state: Mutex::new(InboxState {
                queue: VecDeque::with_capacity(capacity),
                next_seq: 0,
                closed: false,
            }),
            space: Condvar::new(),
            capacity,
            policy: cfg.late_policy,
            counters: InboxCounters::new(),
            channel_id: self.inner.next_channel.fetch_add(1, Ordering::SeqCst),
            latency: Histogram::new(),
            producers: AtomicUsize::new(1),
            hub: Arc::clone(&self.inner),
            reserved_bytes: requested,
        });
        Ok((
            FrameProducer {
                shared: Arc::clone(&shared),
            },
            FrameInbox { shared },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hub(cfg: IngestConfig) -> IngestHub {
        IngestHub::new(cfg)
    }

    #[test]
    fn fifo_order_and_stats_without_pressure() {
        let h = hub(IngestConfig::new().with_inbox_capacity(8));
        let (tx, rx) = h.channel::<u32>().unwrap();
        for v in 0..5u32 {
            assert_eq!(tx.push(v), PushOutcome::Accepted);
        }
        assert_eq!(rx.depth(), 5);
        for expect in 0..5u32 {
            let frame = rx.try_pop().unwrap();
            assert_eq!(frame.payload, expect);
            assert_eq!(frame.seq, u64::from(expect));
            rx.frame_done(frame, false);
        }
        assert!(rx.try_pop().is_none());
        let stats = rx.stats();
        assert_eq!(stats.offered, 5);
        assert_eq!(stats.processed, 5);
        assert_eq!(stats.dropped(), 0);
        assert_eq!(stats.max_depth, 5);
        assert_eq!(stats.latency.count(), 5);
    }

    #[test]
    fn drop_oldest_keeps_newest_contiguous_suffix() {
        let h = hub(IngestConfig::new().with_inbox_capacity(3));
        let (tx, rx) = h.channel::<u64>().unwrap();
        for v in 0..10u64 {
            let outcome = tx.push(v);
            assert!(outcome.is_accepted());
        }
        // Capacity 3, drop-oldest: the queue is exactly the newest suffix.
        let kept: Vec<u64> = std::iter::from_fn(|| rx.try_pop().map(|f| f.payload)).collect();
        assert_eq!(kept, vec![7, 8, 9]);
        let stats = rx.stats();
        assert_eq!(stats.offered, 10);
        assert_eq!(stats.dropped_oldest, 7);
        assert_eq!(stats.dropped_newest, 0);
    }

    #[test]
    fn drop_newest_keeps_oldest_prefix() {
        let h = hub(IngestConfig::new()
            .with_inbox_capacity(3)
            .with_late_policy(LatePolicy::DropNewest));
        let (tx, rx) = h.channel::<u64>().unwrap();
        for v in 0..3u64 {
            assert_eq!(tx.push(v), PushOutcome::Accepted);
        }
        for v in 3..10u64 {
            assert_eq!(tx.push(v), PushOutcome::RejectedNewest);
        }
        let kept: Vec<u64> = std::iter::from_fn(|| rx.try_pop().map(|f| f.payload)).collect();
        assert_eq!(kept, vec![0, 1, 2]);
        let stats = rx.stats();
        assert_eq!(stats.offered, 10);
        assert_eq!(stats.dropped_newest, 7);
    }

    #[test]
    fn block_policy_waits_for_space_and_wakes_on_pop() {
        let h = hub(IngestConfig::new()
            .with_inbox_capacity(1)
            .with_late_policy(LatePolicy::Block));
        let (tx, rx) = h.channel::<u64>().unwrap();
        assert_eq!(tx.push(0), PushOutcome::Accepted);
        let t = std::thread::spawn(move || tx.push(1));
        // Give the producer time to block on the full inbox, then drain.
        std::thread::sleep(Duration::from_millis(20));
        let frame = rx.try_pop().unwrap();
        assert_eq!(frame.payload, 0);
        assert_eq!(t.join().unwrap(), PushOutcome::Accepted);
        assert_eq!(rx.try_pop().unwrap().payload, 1);
        assert!(rx.stats().blocked >= 1);
    }

    #[test]
    fn close_unblocks_producer_and_drains() {
        let h = hub(IngestConfig::new()
            .with_inbox_capacity(1)
            .with_late_policy(LatePolicy::Block));
        let (tx, rx) = h.channel::<u64>().unwrap();
        assert_eq!(tx.push(0), PushOutcome::Accepted);
        let tx2 = tx.clone();
        let t = std::thread::spawn(move || tx2.push(1));
        std::thread::sleep(Duration::from_millis(20));
        tx.close();
        assert_eq!(t.join().unwrap(), PushOutcome::Closed);
        assert!(rx.is_closed());
        assert!(!rx.is_drained(), "backlog still queued");
        assert_eq!(rx.try_pop().unwrap().payload, 0);
        assert!(rx.is_drained());
        assert_eq!(tx.push(2), PushOutcome::Closed);
    }

    #[test]
    fn dropping_last_producer_closes_the_channel() {
        let h = hub(IngestConfig::new());
        let (tx, rx) = h.channel::<u64>().unwrap();
        let tx2 = tx.clone();
        drop(tx);
        assert!(!rx.is_closed(), "a clone still holds the channel open");
        tx2.push(7);
        drop(tx2);
        assert!(rx.is_closed());
        assert_eq!(rx.try_pop().unwrap().payload, 7);
        assert!(rx.is_drained());
    }

    #[test]
    fn session_cap_rejects_loudly_and_releases_on_drop() {
        let h = hub(IngestConfig::new().with_max_sessions(2));
        let a = h.channel::<u8>().unwrap();
        let _b = h.channel::<u8>().unwrap();
        match h.channel::<u8>() {
            Err(AdmissionError::SessionLimit { limit, admitted }) => {
                assert_eq!(limit, 2);
                assert_eq!(admitted, 2);
            }
            other => panic!("expected SessionLimit, got {other:?}"),
        }
        // Dropping a channel releases its admission slot.
        drop(a);
        assert_eq!(h.admitted(), 1);
        assert!(h.channel::<u8>().is_ok());
    }

    #[test]
    fn inbox_memory_budget_rejects_with_accounting() {
        let h = hub(IngestConfig::new()
            .with_inbox_capacity(4)
            .with_frame_bytes_hint(100)
            .with_max_inbox_bytes(1000));
        let _a = h.channel::<u8>().unwrap(); // 400 reserved
        let _b = h.channel::<u8>().unwrap(); // 800 reserved
        match h.channel::<u8>() {
            Err(AdmissionError::InboxMemory {
                limit,
                reserved,
                requested,
            }) => {
                assert_eq!(limit, 1000);
                assert_eq!(reserved, 800);
                assert_eq!(requested, 400);
            }
            other => panic!("expected InboxMemory, got {other:?}"),
        }
        assert_eq!(h.reserved_bytes(), 800, "rejection reserves nothing");
    }

    #[test]
    fn work_signal_version_handoff_is_lossless() {
        let signal = Arc::new(WorkSignal::new());
        let seen = signal.version();
        // Notify *before* the wait starts: the versioned wait must not
        // sleep through it.
        signal.notify();
        let woke = signal.wait_past(seen, Duration::from_secs(5));
        assert!(woke > seen);
        // And a wait with no pending notification times out quietly.
        let v = signal.version();
        assert_eq!(signal.wait_past(v, Duration::from_millis(5)), v);
    }
}
