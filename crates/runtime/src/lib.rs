//! Parallel execution & multi-session serving runtime for the RTGS stack.
//!
//! Three layers, bottom to top:
//!
//! 1. **[`ThreadPool`]** — a std-only work-stealing thread pool with scoped
//!    (borrow-friendly) tasks. Waiting threads help execute queued work, so
//!    scopes nest without deadlock.
//! 2. **[`Backend`]** — the execution seam algorithm code programs against:
//!    chunked index-range loops that run on [`Serial`] (reference) or
//!    [`Parallel`] (pool) backends. Chunk geometry is fixed by the caller,
//!    never by the worker count, so deterministic reductions over chunk
//!    results are bitwise-identical across backends and pool sizes.
//!    [`BackendChoice`] is the `Copy` selector configuration structs embed.
//! 3. **[`SessionScheduler`]** — multi-tenant serving: N concurrent
//!    [`Session`]s advance in round-robin rounds over one pool, with
//!    per-session stats and graceful shutdown. Configure a run through the
//!    single front door, [`Serve::builder`].
//! 4. **[`ingest`]** — the open-loop front-end: tenants stream timestamped
//!    frames into bounded per-session inboxes under admission control and
//!    configurable late-frame policies; the scheduler parks sessions whose
//!    inbox is empty and sheds load when a session falls behind its SLO.
//!
//! The hot paths of the differentiable rasterizer (`rtgs-render`) and the
//! SLAM pipeline (`rtgs-slam`) are expressed against layer 2; whole
//! pipelines are served through layers 3–4.
//!
//! # Example
//!
//! ```
//! use rtgs_runtime::{Backend, BackendChoice, Parallel, Serial};
//!
//! // A chunked map with disjoint writes, identical on any backend.
//! fn squares(backend: &dyn Backend, n: usize) -> Vec<u64> {
//!     let mut out = vec![0u64; n];
//!     let view = rtgs_runtime::SharedSlice::new(&mut out);
//!     backend.for_each_chunk(n, 32, &|_, range| {
//!         for i in range {
//!             // SAFETY: chunks cover disjoint index ranges.
//!             unsafe { view.write(i, (i as u64) * (i as u64)) };
//!         }
//!     });
//!     out
//! }
//!
//! let serial = squares(&Serial, 100);
//! let parallel = squares(&Parallel::new(4), 100);
//! assert_eq!(serial, parallel);
//! assert_eq!(BackendChoice::default(), BackendChoice::Serial);
//! ```

mod backend;
pub mod ingest;
mod pool;
mod scheduler;
mod serve;

pub use backend::{
    exclusive_prefix_sum, exclusive_prefix_sum_into, shared_pool, Backend, BackendChoice, Parallel,
    ScratchPool, Serial, SharedSlice,
};
pub use ingest::{
    AdmissionError, FrameInbox, FrameProducer, IngestConfig, IngestFrame, IngestHub, IngestStats,
    LatePolicy, PushOutcome, WorkSignal,
};
pub use pool::{PoolStats, Scope, ThreadPool};
pub use rtgs_telemetry::{HealthReport, HealthVerdict};
pub use scheduler::{
    fleet_latency, EvictionPolicy, ReplicationOptions, ReplicationStats, Session, SessionIoError,
    SessionOutcome, SessionScheduler, SessionStats, SessionStatus, ShutdownHandle,
};
pub use serve::{Serve, ServeBuilder};
