//! Execution backends: the seam between algorithm code and the thread pool.
//!
//! Algorithms express their data-parallel structure as *chunked index
//! ranges*; a [`Backend`] decides how chunks execute. Crucially, the chunk
//! geometry is fixed by the caller (a constant grain, independent of worker
//! count), so a deterministic fold over chunk results in index order
//! produces bitwise-identical output on [`Serial`] and on [`Parallel`] at
//! any pool size.

use crate::pool::ThreadPool;
use std::collections::HashMap;
use std::ops::Range;
use std::sync::{Arc, Mutex, OnceLock};

/// An execution strategy for chunked data-parallel loops.
pub trait Backend: Send + Sync {
    /// Human-readable backend name (for reports and benches).
    fn name(&self) -> &'static str;

    /// Upper bound on chunks that may run simultaneously (1 for serial).
    fn concurrency(&self) -> usize;

    /// Partitions `0..len` into `chunk_size`-sized chunks and invokes
    /// `body(chunk_index, range)` for each, in any order and possibly
    /// concurrently. Returns after all chunks completed.
    fn for_each_chunk(
        &self,
        len: usize,
        chunk_size: usize,
        body: &(dyn Fn(usize, Range<usize>) + Sync),
    );
}

/// Single-threaded reference backend: chunks run in index order on the
/// calling thread.
#[derive(Debug, Clone, Copy, Default)]
pub struct Serial;

impl Backend for Serial {
    fn name(&self) -> &'static str {
        "serial"
    }

    fn concurrency(&self) -> usize {
        1
    }

    fn for_each_chunk(
        &self,
        len: usize,
        chunk_size: usize,
        body: &(dyn Fn(usize, Range<usize>) + Sync),
    ) {
        let chunk_size = chunk_size.max(1);
        let mut index = 0;
        let mut start = 0;
        while start < len {
            let end = (start + chunk_size).min(len);
            body(index, start..end);
            index += 1;
            start = end;
        }
    }
}

/// Work-stealing parallel backend over a [`ThreadPool`].
#[derive(Debug, Clone)]
pub struct Parallel {
    pool: Arc<ThreadPool>,
}

impl Parallel {
    /// Backend over a shared process-wide pool of the given size. Pools are
    /// cached per size, so constructing the same configuration repeatedly
    /// (e.g. one per SLAM session) does not multiply threads.
    pub fn new(threads: usize) -> Self {
        Self {
            pool: shared_pool(threads),
        }
    }

    /// Backend over the machine-sized shared pool.
    pub fn with_default_size() -> Self {
        Self::new(0)
    }

    /// Backend over an explicit pool (dedicated, not cached).
    pub fn over(pool: Arc<ThreadPool>) -> Self {
        Self { pool }
    }

    /// The underlying pool.
    pub fn pool(&self) -> &Arc<ThreadPool> {
        &self.pool
    }
}

impl Backend for Parallel {
    fn name(&self) -> &'static str {
        "parallel"
    }

    fn concurrency(&self) -> usize {
        self.pool.threads()
    }

    fn for_each_chunk(
        &self,
        len: usize,
        chunk_size: usize,
        body: &(dyn Fn(usize, Range<usize>) + Sync),
    ) {
        self.pool.for_each_chunk(len, chunk_size, body);
    }
}

/// Returns the process-wide shared pool for a worker count (`0` = machine
/// size). Pools live for the process lifetime and are created on first use.
pub fn shared_pool(threads: usize) -> Arc<ThreadPool> {
    static POOLS: OnceLock<Mutex<HashMap<usize, Arc<ThreadPool>>>> = OnceLock::new();
    let resolved = if threads == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        threads
    };
    let pools = POOLS.get_or_init(|| Mutex::new(HashMap::new()));
    let mut pools = pools.lock().unwrap();
    Arc::clone(
        pools
            .entry(resolved)
            .or_insert_with(|| Arc::new(ThreadPool::new(resolved))),
    )
}

/// Exclusive prefix sum over per-chunk counts, used by chunked kernels that
/// compact variable-sized per-chunk output into one dense
/// structure-of-arrays buffer (count in parallel, scan serially, scatter in
/// parallel at `offsets[chunk]`).
///
/// Returns `(offsets, total)` where `offsets[i]` is the output position of
/// chunk `i`'s first element and `total` the summed count. The scan runs on
/// the calling thread — it is O(chunks) — so the resulting offsets, and
/// therefore the scatter layout, are identical on every backend and pool
/// size.
pub fn exclusive_prefix_sum(counts: &[usize]) -> (Vec<usize>, usize) {
    let mut offsets = Vec::new();
    let total = exclusive_prefix_sum_into(counts, &mut offsets);
    (offsets, total)
}

/// [`exclusive_prefix_sum`] writing into caller-owned storage.
///
/// `offsets` is cleared and refilled; once its capacity covers
/// `counts.len()` the scan performs no heap allocation, which is what lets
/// chunked kernels run allocation-free in the steady state (the frame-arena
/// contract of `rtgs-render`). Returns the summed total.
pub fn exclusive_prefix_sum_into(counts: &[usize], offsets: &mut Vec<usize>) -> usize {
    offsets.clear();
    offsets.reserve(counts.len());
    let mut total = 0usize;
    for &c in counts {
        offsets.push(total);
        total += c;
    }
    total
}

/// A pool of reusable `Vec<T>` scratch buffers for chunked kernels.
///
/// Chunk bodies running on a [`Backend`] cannot own per-worker state (the
/// body is a shared `Fn`), so kernels that need per-chunk scratch — e.g. the
/// render kernel's gathered tile working set — [`ScratchPool::take`] a
/// buffer at chunk entry and [`ScratchPool::put`] it back at exit. Buffers
/// keep their capacity across uses, and the pool grows to at most the
/// number of concurrently running chunks; after warm-up, steady-state
/// take/put cycles perform no heap allocation.
#[derive(Debug)]
pub struct ScratchPool<T> {
    buffers: Mutex<Vec<Vec<T>>>,
}

impl<T> Default for ScratchPool<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> ScratchPool<T> {
    /// An empty pool.
    pub fn new() -> Self {
        Self {
            buffers: Mutex::new(Vec::new()),
        }
    }

    /// Pops a pooled buffer (cleared, capacity retained) or returns a fresh
    /// empty one when the pool is dry.
    pub fn take(&self) -> Vec<T> {
        self.buffers.lock().unwrap().pop().unwrap_or_default()
    }

    /// Returns a buffer to the pool for reuse (contents cleared here).
    pub fn put(&self, mut buffer: Vec<T>) {
        buffer.clear();
        self.buffers.lock().unwrap().push(buffer);
    }

    /// Number of currently pooled (idle) buffers.
    pub fn idle(&self) -> usize {
        self.buffers.lock().unwrap().len()
    }
}

/// Copyable backend selector for configuration structs (`SlamConfig` stays
/// `Copy`); [`BackendChoice::instantiate`] resolves it to a backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BackendChoice {
    /// Single-threaded execution.
    #[default]
    Serial,
    /// Work-stealing execution on the shared pool of `threads` workers
    /// (`0` = machine size).
    Parallel {
        /// Worker count; `0` picks `available_parallelism`.
        threads: usize,
    },
}

impl BackendChoice {
    /// Resolves the choice to a backend instance.
    pub fn instantiate(&self) -> Arc<dyn Backend> {
        match *self {
            Self::Serial => Arc::new(Serial),
            Self::Parallel { threads } => Arc::new(Parallel::new(threads)),
        }
    }

    /// Short label for reports (`serial`, `parallel(4)`, `parallel(auto)`).
    pub fn label(&self) -> String {
        match self {
            Self::Serial => "serial".to_string(),
            Self::Parallel { threads: 0 } => "parallel(auto)".to_string(),
            Self::Parallel { threads } => format!("parallel({threads})"),
        }
    }
}

/// A length-checked shared view over a mutable slice for disjoint parallel
/// writes.
///
/// Chunked kernels preallocate their output and let each chunk write its own
/// disjoint index range. Rust cannot prove that disjointness across the
/// `dyn Fn` backend seam, so this wrapper carries the invariant instead.
pub struct SharedSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

// SAFETY: access is only through `write`/`get_mut`, whose contract requires
// callers to touch disjoint indices from different threads.
unsafe impl<T: Send> Sync for SharedSlice<'_, T> {}
unsafe impl<T: Send> Send for SharedSlice<'_, T> {}

impl<'a, T> SharedSlice<'a, T> {
    /// Wraps a mutable slice.
    pub fn new(slice: &'a mut [T]) -> Self {
        Self {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Slice length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns a mutable reference to element `i`.
    ///
    /// # Safety
    ///
    /// No two concurrently-live references returned by this method (from any
    /// thread) may target the same index.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn get_mut(&self, i: usize) -> &mut T {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        &mut *self.ptr.add(i)
    }

    /// Writes `value` to element `i`.
    ///
    /// # Safety
    ///
    /// As for [`SharedSlice::get_mut`]: concurrent writers must target
    /// disjoint indices.
    pub unsafe fn write(&self, i: usize, value: T) {
        *self.get_mut(i) = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_backend_visits_chunks_in_order() {
        let order = Mutex::new(Vec::new());
        Serial.for_each_chunk(10, 3, &|index, range| {
            order.lock().unwrap().push((index, range.start, range.end));
        });
        assert_eq!(
            *order.lock().unwrap(),
            vec![(0, 0, 3), (1, 3, 6), (2, 6, 9), (3, 9, 10)]
        );
    }

    #[test]
    fn parallel_backend_covers_all_chunks() {
        let backend = Parallel::new(3);
        let hits: Vec<std::sync::atomic::AtomicUsize> = (0..100)
            .map(|_| std::sync::atomic::AtomicUsize::new(0))
            .collect();
        backend.for_each_chunk(100, 7, &|_, range| {
            for i in range {
                hits[i].fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
        });
        assert!(hits
            .iter()
            .all(|h| h.load(std::sync::atomic::Ordering::Relaxed) == 1));
    }

    #[test]
    fn shared_pools_are_cached_per_size() {
        let a = shared_pool(2);
        let b = shared_pool(2);
        assert!(Arc::ptr_eq(&a, &b));
        let c = shared_pool(3);
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn backend_choice_labels() {
        assert_eq!(BackendChoice::Serial.label(), "serial");
        assert_eq!(
            BackendChoice::Parallel { threads: 4 }.label(),
            "parallel(4)"
        );
        assert_eq!(
            BackendChoice::Parallel { threads: 0 }.label(),
            "parallel(auto)"
        );
        assert_eq!(BackendChoice::default(), BackendChoice::Serial);
    }

    #[test]
    fn exclusive_prefix_sum_offsets() {
        let (offsets, total) = exclusive_prefix_sum(&[3, 0, 2, 5]);
        assert_eq!(offsets, vec![0, 3, 3, 5]);
        assert_eq!(total, 10);
        let (empty, zero) = exclusive_prefix_sum(&[]);
        assert!(empty.is_empty());
        assert_eq!(zero, 0);
    }

    #[test]
    fn exclusive_prefix_sum_into_reuses_capacity() {
        let mut offsets = Vec::new();
        let total = exclusive_prefix_sum_into(&[3, 0, 2, 5], &mut offsets);
        assert_eq!(offsets, vec![0, 3, 3, 5]);
        assert_eq!(total, 10);
        let cap = offsets.capacity();
        let total = exclusive_prefix_sum_into(&[1, 1], &mut offsets);
        assert_eq!(offsets, vec![0, 1]);
        assert_eq!(total, 2);
        assert_eq!(offsets.capacity(), cap, "reuse must keep capacity");
    }

    #[test]
    fn scratch_pool_recycles_buffers() {
        let pool: ScratchPool<u32> = ScratchPool::new();
        let mut a = pool.take();
        a.extend(0..100);
        let cap = a.capacity();
        pool.put(a);
        assert_eq!(pool.idle(), 1);
        let b = pool.take();
        assert!(b.is_empty(), "pooled buffers come back cleared");
        assert_eq!(b.capacity(), cap, "pooled buffers keep capacity");
        assert_eq!(pool.idle(), 0);
    }

    #[test]
    fn shared_slice_disjoint_parallel_writes() {
        let backend = Parallel::new(4);
        let mut data = vec![0usize; 256];
        let view = SharedSlice::new(&mut data);
        backend.for_each_chunk(256, 16, &|_, range| {
            for i in range {
                // SAFETY: each index is written by exactly one chunk.
                unsafe { view.write(i, i * 3) };
            }
        });
        assert!(data.iter().enumerate().all(|(i, &v)| v == i * 3));
    }
}
