//! Multi-session serving: round-robin scheduling of N concurrent stepwise
//! workloads over one thread pool.
//!
//! A [`Session`] is any incrementally-steppable workload (one SLAM frame per
//! step, in the `rtgs-slam` adapter). The [`SessionScheduler`] advances all
//! live sessions one step per *round*, running the steps of a round
//! concurrently on the pool. The per-round barrier is the fairness
//! guarantee: no tenant ever runs more than one step ahead of another, which
//! is the round-robin frame scheduling a multi-tenant serving substrate
//! needs. Steps may internally fan out onto the same pool (nested scopes are
//! deadlock-free), so per-session parallel backends compose with cross-
//! session parallelism.

use crate::pool::ThreadPool;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Progress state returned by [`Session::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionStatus {
    /// The session has more work; it will be stepped again next round.
    Running,
    /// The session is complete; it will not be stepped again.
    Finished,
}

/// An incrementally-steppable workload that yields a report when done.
pub trait Session: Send {
    /// The result produced once the session ends (naturally or by
    /// shutdown).
    type Report: Send;

    /// Advances the session by one unit of work (e.g. one frame).
    fn step(&mut self) -> SessionStatus;

    /// Consumes the session into its report. Called after the session
    /// finished, or early on graceful shutdown (reports then cover the work
    /// done so far).
    fn finish(self) -> Self::Report;
}

/// Per-session scheduling statistics.
#[derive(Debug, Clone)]
pub struct SessionStats {
    /// Index of the session in scheduler insertion order.
    pub session: usize,
    /// Caller-provided label.
    pub label: String,
    /// Steps executed.
    pub steps: usize,
    /// Wall-clock summed over this session's steps (steps of different
    /// sessions overlap, so these sum to more than the scheduler's
    /// wall-clock when serving in parallel).
    pub wall: Duration,
    /// Whether the session ran to natural completion (`false` when a
    /// shutdown stopped it early).
    pub completed: bool,
}

/// A finished session: its stats plus the report it produced.
#[derive(Debug)]
pub struct SessionOutcome<R> {
    /// Scheduling statistics.
    pub stats: SessionStats,
    /// The session's report.
    pub report: R,
}

/// Cloneable handle requesting a graceful stop: in-flight steps complete,
/// no new rounds start, and every session still yields a report.
#[derive(Debug, Clone)]
pub struct ShutdownHandle(Arc<AtomicBool>);

impl ShutdownHandle {
    /// Requests the stop.
    pub fn shutdown(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether a stop has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

struct Entry<S> {
    session: S,
    label: String,
    steps: usize,
    wall: Duration,
    done: bool,
}

/// Serves N sessions concurrently over one pool with round-robin fairness.
pub struct SessionScheduler<S: Session> {
    pool: Arc<ThreadPool>,
    sessions: Vec<Entry<S>>,
    stop: Arc<AtomicBool>,
}

impl<S: Session> SessionScheduler<S> {
    /// Scheduler over the shared pool with `threads` workers (`0` = machine
    /// size).
    pub fn new(threads: usize) -> Self {
        Self::with_pool(crate::backend::shared_pool(threads))
    }

    /// Scheduler over an explicit pool.
    pub fn with_pool(pool: Arc<ThreadPool>) -> Self {
        Self {
            pool,
            sessions: Vec::new(),
            stop: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Registers a session; returns its index (stable in the output).
    pub fn add_session(&mut self, label: impl Into<String>, session: S) -> usize {
        self.sessions.push(Entry {
            session,
            label: label.into(),
            steps: 0,
            wall: Duration::ZERO,
            done: false,
        });
        self.sessions.len() - 1
    }

    /// Number of registered sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Handle for requesting a graceful stop from another thread (or from
    /// within a session step).
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle(Arc::clone(&self.stop))
    }

    /// Runs all sessions to completion (or until shutdown), returning one
    /// outcome per session in insertion order.
    ///
    /// # Panics
    ///
    /// Re-raises the first panic of any session step.
    pub fn run(mut self) -> Vec<SessionOutcome<S::Report>> {
        while !self.stop.load(Ordering::SeqCst) && self.sessions.iter().any(|entry| !entry.done) {
            // One round: each live session advances exactly one step; steps
            // within the round run concurrently on the pool.
            self.pool.scope(|scope| {
                for entry in self.sessions.iter_mut().filter(|entry| !entry.done) {
                    scope.spawn(move || {
                        let t0 = Instant::now();
                        let status = entry.session.step();
                        entry.wall += t0.elapsed();
                        entry.steps += 1;
                        if status == SessionStatus::Finished {
                            entry.done = true;
                        }
                    });
                }
            });
        }

        self.sessions
            .into_iter()
            .enumerate()
            .map(|(session, entry)| SessionOutcome {
                stats: SessionStats {
                    session,
                    label: entry.label,
                    steps: entry.steps,
                    wall: entry.wall,
                    completed: entry.done,
                },
                report: entry.session.finish(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter {
        target: usize,
        count: usize,
        log: Arc<std::sync::Mutex<Vec<usize>>>,
        id: usize,
        on_step: Option<ShutdownHandle>,
    }

    impl Session for Counter {
        type Report = usize;

        fn step(&mut self) -> SessionStatus {
            self.count += 1;
            self.log.lock().unwrap().push(self.id);
            if let Some(handle) = &self.on_step {
                handle.shutdown();
            }
            if self.count >= self.target {
                SessionStatus::Finished
            } else {
                SessionStatus::Running
            }
        }

        fn finish(self) -> usize {
            self.count
        }
    }

    fn counter(id: usize, target: usize, log: &Arc<std::sync::Mutex<Vec<usize>>>) -> Counter {
        Counter {
            target,
            count: 0,
            log: Arc::clone(log),
            id,
            on_step: None,
        }
    }

    #[test]
    fn all_sessions_complete_with_uneven_lengths() {
        let log = Arc::new(std::sync::Mutex::new(Vec::new()));
        let mut scheduler = SessionScheduler::new(2);
        for (id, target) in [(0, 3), (1, 7), (2, 1), (3, 5)] {
            scheduler.add_session(format!("s{id}"), counter(id, target, &log));
        }
        let outcomes = scheduler.run();
        assert_eq!(outcomes.len(), 4);
        for (outcome, target) in outcomes.iter().zip([3, 7, 1, 5]) {
            assert!(outcome.stats.completed);
            assert_eq!(outcome.stats.steps, target);
            assert_eq!(outcome.report, target);
        }
    }

    #[test]
    fn rounds_are_fair() {
        // With round-robin, after the log's first 2N entries every live
        // session has stepped exactly twice.
        let log = Arc::new(std::sync::Mutex::new(Vec::new()));
        let mut scheduler = SessionScheduler::new(3);
        for id in 0..4 {
            scheduler.add_session(format!("s{id}"), counter(id, 6, &log));
        }
        scheduler.run();
        let log = log.lock().unwrap();
        for round in 0..6 {
            let mut ids: Vec<usize> = log[round * 4..(round + 1) * 4].to_vec();
            ids.sort_unstable();
            assert_eq!(ids, vec![0, 1, 2, 3], "round {round} not fair: {log:?}");
        }
    }

    #[test]
    fn graceful_shutdown_yields_partial_reports() {
        let log = Arc::new(std::sync::Mutex::new(Vec::new()));
        let mut scheduler = SessionScheduler::new(2);
        let handle = scheduler.shutdown_handle();
        let mut first = counter(0, 1000, &log);
        // The first session requests shutdown on its first step.
        first.on_step = Some(handle);
        scheduler.add_session("canceller", first);
        scheduler.add_session("long", counter(1, 1000, &log));
        let outcomes = scheduler.run();
        assert_eq!(outcomes.len(), 2);
        for outcome in &outcomes {
            assert!(!outcome.stats.completed);
            assert!(outcome.stats.steps >= 1);
            assert!(outcome.stats.steps < 1000, "shutdown was not graceful");
            assert_eq!(outcome.report, outcome.stats.steps);
        }
    }

    #[test]
    fn empty_scheduler_returns_no_outcomes() {
        let scheduler: SessionScheduler<Counter> = SessionScheduler::new(1);
        assert!(scheduler.run().is_empty());
    }
}
