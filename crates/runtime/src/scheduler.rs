//! Multi-session serving: round-robin scheduling of N concurrent stepwise
//! workloads over one thread pool, with optional hibernate-to-disk
//! eviction under a residency or memory budget.
//!
//! A [`Session`] is any incrementally-steppable workload (one SLAM frame per
//! step, in the `rtgs-slam` adapter). The [`SessionScheduler`] advances all
//! live sessions one step per *round*, running the steps of a round
//! concurrently on the pool. The per-round barrier is the fairness
//! guarantee: no tenant ever runs more than one step ahead of another, which
//! is the round-robin frame scheduling a multi-tenant serving substrate
//! needs. Steps may internally fan out onto the same pool (nested scopes are
//! deadlock-free), so per-session parallel backends compose with cross-
//! session parallelism.
//!
//! # Eviction
//!
//! With an [`EvictionPolicy`] attached, the scheduler keeps at most
//! `max_resident_sessions` sessions (and at most `max_resident_bytes` of
//! reported session memory) resident: when the budget is exceeded, the
//! **coldest** session — least-recently stepped, ties broken by insertion
//! order — is asked to [`Session::hibernate`] to a spill file. A
//! hibernated session is transparently [`Session::rehydrate`]d right
//! before its next step (its steps run one at a time, after the resident
//! round, so the budget holds throughout the round, not just between
//! rounds). Sessions whose `hibernate` reports unsupported are never
//! evicted. Hibernation must not change results: a session that was
//! evicted and rehydrated produces the same report as one that stayed
//! resident (asserted end-to-end in `rtgs-slam`'s serving tests).
//!
//! # Open-loop readiness
//!
//! Under the [`ingest`](crate::ingest) front-end, sessions are driven by
//! frames arriving in bounded inboxes rather than an always-ready dataset.
//! The scheduler consults [`Session::ready`] before every round: a session
//! with nothing to do **parks** — it is not stepped, consumes no pool job,
//! and records no latency sample. When *no* session is ready, the scheduler
//! blocks on the hub's [`WorkSignal`](crate::ingest::WorkSignal) instead of
//! spinning, waking as soon as any producer delivers a frame. Admission of
//! new sessions goes through [`SessionScheduler::try_admit`], which rejects
//! with a typed [`AdmissionError`] instead of silently overcommitting.

use crate::ingest::{AdmissionError, IngestHub, IngestStats};
use crate::pool::ThreadPool;
use rtgs_telemetry::{
    journal_record, Counter, EventKind, Gauge, HealthReport, Histogram, HistogramSnapshot,
    SnapshotWriter, SpanGuard,
};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Progress state returned by [`Session::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionStatus {
    /// The session has more work; it will be stepped again next round.
    Running,
    /// The session had nothing to do (e.g. its inbox was empty): the step
    /// was a no-op and is not counted or latency-sampled. Prefer returning
    /// `false` from [`Session::ready`] so the scheduler never spends a pool
    /// job finding out; `Idle` is the in-step fallback for races.
    Idle,
    /// The session is complete; it will not be stepped again.
    Finished,
}

/// Typed failure of a session's spill I/O hooks, replacing the former
/// stringly `Result<(), String>` so callers can branch on the cause and
/// error sources are preserved.
#[derive(Debug)]
#[non_exhaustive]
pub enum SessionIoError {
    /// The session does not implement hibernation; the scheduler
    /// permanently exempts it from eviction.
    Unsupported(&'static str),
    /// The spill file could not be read or written.
    Io(std::io::Error),
    /// The session's snapshot layer failed (wraps e.g. `rtgs-snapshot`'s
    /// `SnapshotError`).
    Snapshot(Box<dyn std::error::Error + Send + Sync>),
}

impl std::fmt::Display for SessionIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Unsupported(what) => write!(f, "unsupported: {what}"),
            Self::Io(e) => write!(f, "spill i/o failed: {e}"),
            Self::Snapshot(e) => write!(f, "snapshot failed: {e}"),
        }
    }
}

impl std::error::Error for SessionIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Unsupported(_) => None,
            Self::Io(e) => Some(e),
            Self::Snapshot(e) => Some(e.as_ref()),
        }
    }
}

impl From<std::io::Error> for SessionIoError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// An incrementally-steppable workload that yields a report when done.
pub trait Session: Send {
    /// The result produced once the session ends (naturally or by
    /// shutdown).
    type Report: Send;

    /// Advances the session by one unit of work (e.g. one frame).
    fn step(&mut self) -> SessionStatus;

    /// Consumes the session into its report. Called after the session
    /// finished, or early on graceful shutdown (reports then cover the work
    /// done so far).
    fn finish(self) -> Self::Report;

    /// Whether the session has work available right now. A session
    /// returning `false` is **parked** for the round: not stepped, no pool
    /// job, no latency sample. The default (`true`) preserves closed-loop
    /// behavior, where the next unit of work is always available.
    ///
    /// Open-loop sessions report their inbox state here
    /// (frame queued, or stream drained and a final `Finished` step due).
    fn ready(&self) -> bool {
        true
    }

    /// Open-loop ingestion counters for this session, surfaced in
    /// [`SessionStats::ingest`]. `None` (the default) for closed-loop
    /// sessions.
    fn ingest_stats(&self) -> Option<IngestStats> {
        None
    }

    /// Approximate bytes of resident heavy state, summed against
    /// [`EvictionPolicy::max_resident_bytes`]. `0` (the default) means
    /// unknown/negligible.
    fn resident_bytes(&self) -> usize {
        0
    }

    /// Spills the session's heavy state to `path` and releases the
    /// memory. The default reports [`SessionIoError::Unsupported`], which
    /// permanently exempts the session from eviction.
    ///
    /// # Errors
    ///
    /// A typed [`SessionIoError`]; the scheduler marks the session
    /// non-evictable and moves on.
    fn hibernate(&mut self, _path: &Path) -> Result<(), SessionIoError> {
        Err(SessionIoError::Unsupported(
            "session does not support hibernation",
        ))
    }

    /// Reloads state spilled by [`Session::hibernate`]. Only called on a
    /// session the scheduler hibernated earlier.
    ///
    /// # Errors
    ///
    /// A typed [`SessionIoError`]; the scheduler treats a rehydration
    /// failure as fatal for the run (state on disk is the only copy) and
    /// panics.
    fn rehydrate(&mut self, _path: &Path) -> Result<(), SessionIoError> {
        Err(SessionIoError::Unsupported(
            "session does not support rehydration",
        ))
    }

    /// Primary→follower replication counters for this session, surfaced in
    /// [`SessionStats::replication`]. `None` (the default) for sessions
    /// that do not replicate.
    fn replication_stats(&self) -> Option<ReplicationStats> {
        None
    }

    /// Flushes the session's replication stream — pump until every
    /// outstanding record is acknowledged (or typed-fails) and the stream's
    /// durable journal, if any, is fsynced. Called by the scheduler at
    /// shutdown **before** [`Session::finish`], so the final stats satisfy
    /// `frames_processed == frames_replicated + frames_dropped_by_policy`.
    /// The default (non-replicating session) is a no-op.
    ///
    /// # Errors
    ///
    /// A typed [`SessionIoError`]; the scheduler counts the failure
    /// (`serve.replication.drain_failures`) and still collects the report.
    fn drain_replication(&mut self) -> Result<(), SessionIoError> {
        Ok(())
    }
}

/// Primary-side replication counters for one session, as captured at
/// collection time (see [`Session::replication_stats`]).
///
/// The accounting identity a drained shutdown guarantees:
/// `frames_processed == frames_replicated + frames_dropped_by_policy`,
/// with `frames_behind == 0`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicationStats {
    /// Frames whose state the follower has acknowledged (covered by acked
    /// base/delta records).
    pub frames_replicated: u64,
    /// Frames deliberately not replicated by the stream's policy (e.g. a
    /// capture stride), counted so frame accounting still balances.
    pub frames_dropped_by_policy: u64,
    /// Frames captured but not yet acknowledged — the follower's lag.
    pub frames_behind: u64,
    /// Encoded record bytes currently in flight (sent, unacknowledged).
    pub bytes_queued: u64,
    /// Stream records sent, including retransmits.
    pub records_sent: u64,
    /// Stream records acknowledged by the follower.
    pub records_acked: u64,
    /// Records retransmitted after an ack timeout.
    pub retransmits: u64,
    /// Fresh-base resyncs after a broken delta chain.
    pub resyncs: u64,
    /// Current resync epoch.
    pub epoch: u32,
}

/// Scheduler-level replication behavior, attached via
/// [`crate::ServeBuilder::replicate`].
///
/// `#[non_exhaustive]`: construct via [`ReplicationOptions::new`] plus the
/// `with_*` builders.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ReplicationOptions {
    /// Drain every session's replication stream at graceful shutdown so
    /// final stats balance (default `true`). Disable only for
    /// fire-and-forget streams where shutdown latency matters more than
    /// exact frame accounting.
    pub drain_on_shutdown: bool,
}

impl Default for ReplicationOptions {
    fn default() -> Self {
        Self {
            drain_on_shutdown: true,
        }
    }
}

impl ReplicationOptions {
    /// The default options: drain on shutdown.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets whether graceful shutdown drains replication streams.
    #[must_use]
    pub fn with_drain_on_shutdown(mut self, drain: bool) -> Self {
        self.drain_on_shutdown = drain;
        self
    }
}

/// Residency budget driving hibernate-to-disk eviction.
///
/// `#[non_exhaustive]`: construct via [`EvictionPolicy::new`] plus the
/// `with_*` builders, so future budget knobs are non-breaking.
#[derive(Debug, Clone)]
#[must_use = "attach the policy with ServeBuilder::eviction"]
#[non_exhaustive]
pub struct EvictionPolicy {
    /// Maximum sessions resident at once (`None` = unlimited). Values
    /// below 1 are treated as 1 — something must be resident to step.
    pub max_resident_sessions: Option<usize>,
    /// Maximum summed [`Session::resident_bytes`] (`None` = unlimited).
    pub max_resident_bytes: Option<usize>,
    /// Directory spill files are written to (created on first use).
    pub spill_dir: PathBuf,
}

impl EvictionPolicy {
    /// An unlimited policy spilling into `spill_dir`; combine with the
    /// `with_*` builders to set budgets.
    pub fn new(spill_dir: impl Into<PathBuf>) -> Self {
        Self {
            max_resident_sessions: None,
            max_resident_bytes: None,
            spill_dir: spill_dir.into(),
        }
    }

    /// Caps the number of resident sessions.
    pub fn with_max_resident_sessions(mut self, n: usize) -> Self {
        self.max_resident_sessions = Some(n);
        self
    }

    /// Caps the summed resident bytes reported by the sessions.
    pub fn with_max_resident_bytes(mut self, bytes: usize) -> Self {
        self.max_resident_bytes = Some(bytes);
        self
    }

    fn spill_path(&self, session: usize) -> PathBuf {
        self.spill_dir.join(format!("session-{session}.snap"))
    }
}

/// Per-session scheduling statistics.
#[derive(Debug, Clone)]
pub struct SessionStats {
    /// Index of the session in scheduler insertion order.
    pub session: usize,
    /// Caller-provided label.
    pub label: String,
    /// Steps executed.
    pub steps: usize,
    /// Wall-clock summed over this session's steps (steps of different
    /// sessions overlap, so these sum to more than the scheduler's
    /// wall-clock when serving in parallel).
    pub wall: Duration,
    /// Whether the session ran to natural completion (`false` when a
    /// shutdown stopped it early).
    pub completed: bool,
    /// Times this session was hibernated to disk by the eviction policy.
    pub hibernations: usize,
    /// Times this session was rehydrated from disk.
    pub rehydrations: usize,
    /// Wall-clock spent writing this session's spill files (I/O that would
    /// otherwise vanish from per-session accounting — it happens outside
    /// the step window).
    pub hibernate_wall: Duration,
    /// Wall-clock spent reading this session's spill files back.
    pub rehydrate_wall: Duration,
    /// Rounds this session was parked for lack of work (not ready, or a
    /// step that returned [`SessionStatus::Idle`]). Parked rounds consume
    /// no pool jobs and record no latency samples.
    pub idle_rounds: usize,
    /// Open-loop ingestion counters (offered/processed/dropped/degraded and
    /// end-to-end frame latency); `None` for closed-loop sessions.
    pub ingest: Option<IngestStats>,
    /// Primary-side replication counters, sampled after the shutdown drain;
    /// `None` for sessions that do not replicate.
    pub replication: Option<ReplicationStats>,
    /// Per-step latency distribution (nanoseconds), for p50/p99/p999
    /// extraction; merge across sessions with [`fleet_latency`].
    pub latency: HistogramSnapshot,
    /// Aggregated health verdict for the session (ingest backlog, shed
    /// state, replication lag, resident footprint vs. budget), for the
    /// flight recorder and operator dashboards.
    pub health: HealthReport,
}

/// Merges every outcome's per-session step-latency histogram into one
/// fleet-wide distribution.
pub fn fleet_latency<R>(outcomes: &[SessionOutcome<R>]) -> HistogramSnapshot {
    let mut fleet = HistogramSnapshot::empty();
    for outcome in outcomes {
        fleet.merge(&outcome.stats.latency);
    }
    fleet
}

/// A finished session: its stats plus the report it produced.
#[derive(Debug)]
pub struct SessionOutcome<R> {
    /// Scheduling statistics.
    pub stats: SessionStats,
    /// The session's report.
    pub report: R,
}

/// Cloneable handle requesting a graceful stop: in-flight steps complete,
/// no new rounds start, and every session still yields a report.
#[derive(Debug, Clone)]
pub struct ShutdownHandle(Arc<AtomicBool>);

impl ShutdownHandle {
    /// Requests the stop.
    pub fn shutdown(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether a stop has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

struct Entry<S> {
    session: S,
    label: String,
    steps: usize,
    wall: Duration,
    done: bool,
    /// Heavy state currently spilled to disk.
    hibernated: bool,
    /// Bytes the session reported just before its last hibernation — the
    /// headroom a just-in-time rehydration must clear first.
    parked_bytes: usize,
    /// `false` once a hibernate attempt reported unsupported/failed.
    evictable: bool,
    /// Round of the most recent step (coldness metric; ties broken by
    /// insertion index).
    last_stepped_round: u64,
    /// Rounds skipped because the session had no work.
    idle_rounds: usize,
    /// Readiness sampled once at the top of the current round, so the
    /// park decision and the spawn filter agree.
    ready_now: bool,
    hibernations: usize,
    rehydrations: usize,
    hibernate_wall: Duration,
    rehydrate_wall: Duration,
    /// Whether the shutdown replication drain failed for this session
    /// (surfaces as a Critical health verdict).
    drain_failed: bool,
    /// Per-step latency in nanoseconds (pre-sized buckets; recording from a
    /// pool worker is wait-free and allocation-free).
    latency: Histogram,
}

impl<S> Entry<S> {
    #[inline]
    fn record_step(&mut self, elapsed: Duration, round: u64) {
        self.wall += elapsed;
        self.latency.record(elapsed.as_nanos() as u64);
        self.steps += 1;
        self.last_stepped_round = round;
    }
}

/// Fleet-wide metric handles resolved once from the global registry.
struct SchedulerMetrics {
    step_ns: Arc<Histogram>,
    steps: Arc<Counter>,
    /// Live sessions parked (no work) as of the latest round.
    idle_sessions: Arc<Gauge>,
    hibernations: Arc<Counter>,
    rehydrations: Arc<Counter>,
    hibernate_ns: Arc<Counter>,
    rehydrate_ns: Arc<Counter>,
    pool_jobs: Arc<Gauge>,
    pool_steals: Arc<Gauge>,
    pool_parks: Arc<Gauge>,
}

impl SchedulerMetrics {
    fn from_global() -> Self {
        let registry = rtgs_telemetry::global();
        Self {
            step_ns: registry.histogram("serve.step_ns"),
            steps: registry.counter("serve.steps"),
            idle_sessions: registry.gauge("serve.idle_sessions"),
            hibernations: registry.counter("serve.hibernate.count"),
            rehydrations: registry.counter("serve.rehydrate.count"),
            hibernate_ns: registry.counter("serve.hibernate.ns"),
            rehydrate_ns: registry.counter("serve.rehydrate.ns"),
            pool_jobs: registry.gauge("pool.jobs"),
            pool_steals: registry.gauge("pool.steals"),
            pool_parks: registry.gauge("pool.parks"),
        }
    }
}

/// Serves N sessions concurrently over one pool with round-robin fairness.
pub struct SessionScheduler<S: Session> {
    pool: Arc<ThreadPool>,
    sessions: Vec<Entry<S>>,
    stop: Arc<AtomicBool>,
    policy: Option<EvictionPolicy>,
    ingest: Option<IngestHub>,
    metrics: SchedulerMetrics,
    snapshot_writer: Option<SnapshotWriter>,
    replication: Option<ReplicationOptions>,
}

impl<S: Session> SessionScheduler<S> {
    /// Scheduler over the shared pool with `threads` workers (`0` = machine
    /// size).
    pub fn new(threads: usize) -> Self {
        Self::with_pool(crate::backend::shared_pool(threads))
    }

    /// Scheduler over an explicit pool.
    pub fn with_pool(pool: Arc<ThreadPool>) -> Self {
        Self {
            pool,
            sessions: Vec::new(),
            stop: Arc::new(AtomicBool::new(false)),
            policy: None,
            ingest: None,
            metrics: SchedulerMetrics::from_global(),
            snapshot_writer: None,
            replication: None,
        }
    }

    /// Attaches a hibernate-to-disk eviction policy (see the module docs).
    pub fn set_eviction_policy(&mut self, policy: EvictionPolicy) {
        self.policy = Some(policy);
    }

    /// Attaches the open-loop ingestion hub: the scheduler parks on the
    /// hub's [`WorkSignal`](crate::ingest::WorkSignal) when no session is
    /// ready, and [`try_admit`](Self::try_admit) enforces the hub's
    /// session cap.
    pub fn set_ingest(&mut self, hub: &IngestHub) {
        self.ingest = Some(hub.clone());
    }

    /// Attaches a periodic telemetry-snapshot writer: the global registry is
    /// exported to the writer's path between rounds (rate-limited by the
    /// writer's interval) and once more on shutdown.
    pub fn set_snapshot_writer(&mut self, writer: SnapshotWriter) {
        self.snapshot_writer = Some(writer);
    }

    /// Attaches replication behavior (see [`ReplicationOptions`]). Without
    /// this the scheduler still drains replicating sessions at shutdown
    /// with default options — attach explicitly only to change them.
    pub fn set_replication(&mut self, options: ReplicationOptions) {
        self.replication = Some(options);
    }

    /// Mirrors the pool's scheduling counters into the global registry so
    /// exports carry worker utilization alongside session latency.
    fn export_pool_stats(&self) {
        let stats = self.pool.stats();
        self.metrics.pool_jobs.set(stats.jobs as i64);
        self.metrics.pool_steals.set(stats.steals as i64);
        self.metrics.pool_parks.set(stats.parks as i64);
    }

    /// Registers a session; returns its index (stable in the output).
    pub fn add_session(&mut self, label: impl Into<String>, session: S) -> usize {
        self.sessions.push(Entry {
            session,
            label: label.into(),
            steps: 0,
            wall: Duration::ZERO,
            done: false,
            hibernated: false,
            parked_bytes: 0,
            evictable: true,
            last_stepped_round: 0,
            idle_rounds: 0,
            ready_now: true,
            hibernations: 0,
            rehydrations: 0,
            hibernate_wall: Duration::ZERO,
            rehydrate_wall: Duration::ZERO,
            drain_failed: false,
            latency: Histogram::new(),
        });
        self.sessions.len() - 1
    }

    /// Admission-controlled [`add_session`](Self::add_session): the session
    /// is checked against the ingest hub's concurrent-session cap and the
    /// eviction policy's resident-byte budget before registration.
    ///
    /// # Errors
    ///
    /// Returns the typed rejection reason **and the session back** —
    /// scheduler state is untouched, so the caller can retry later, shrink
    /// the session, or route it to another scheduler.
    pub fn try_admit(
        &mut self,
        label: impl Into<String>,
        session: S,
    ) -> Result<usize, (AdmissionError, S)> {
        if let Some(limit) = self
            .ingest
            .as_ref()
            .and_then(|hub| hub.config().max_sessions)
        {
            let admitted = self.sessions.iter().filter(|e| !e.done).count();
            if admitted >= limit {
                journal_record(
                    EventKind::AdmissionReject,
                    self.sessions.len() as u32,
                    0,
                    0,
                    admitted as u64,
                );
                return Err((AdmissionError::SessionLimit { limit, admitted }, session));
            }
        }
        if let Some(limit) = self.policy.as_ref().and_then(|p| p.max_resident_bytes) {
            let requested = session.resident_bytes();
            // Live residency, polled at admission time — sessions grow past
            // their at-admission estimates, so the budget check must see
            // what they occupy *now*, not what they claimed when admitted.
            let resident: usize = self
                .sessions
                .iter()
                .filter(|e| !e.done && !e.hibernated)
                .map(|e| e.session.resident_bytes())
                .sum();
            // A session larger than the whole byte budget could never be
            // made resident — even alone — so it can never be stepped; and
            // one that does not fit beside the current residents would
            // immediately blow the budget the eviction policy enforces.
            if requested > limit || resident.saturating_add(requested) > limit {
                journal_record(
                    EventKind::AdmissionReject,
                    self.sessions.len() as u32,
                    0,
                    0,
                    resident as u64,
                );
                return Err((
                    AdmissionError::ResidentBytes {
                        limit,
                        requested,
                        resident,
                    },
                    session,
                ));
            }
        }
        Ok(self.add_session(label, session))
    }

    /// Number of registered sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Handle for requesting a graceful stop from another thread (or from
    /// within a session step).
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle(Arc::clone(&self.stop))
    }

    /// Sessions currently resident (live and not hibernated).
    fn resident_count(&self) -> usize {
        self.sessions
            .iter()
            .filter(|e| !e.done && !e.hibernated)
            .count()
    }

    /// Hibernates coldest-first until the policy's budgets hold, keeping
    /// `reserve_sessions` residency slots and `reserve_bytes` of memory
    /// headroom free for an imminent rehydration. Stops early when nothing
    /// evictable remains.
    fn enforce_budget(&mut self, reserve_sessions: usize, reserve_bytes: usize) {
        let Some(policy) = self.policy.clone() else {
            return;
        };
        // With a rehydration imminent (a non-zero reserve) residency may
        // drop to zero — the incoming session fills the slot. Otherwise
        // keep at least one session resident so the round can make
        // progress.
        let min_keep = usize::from(reserve_sessions == 0 && reserve_bytes == 0);
        loop {
            let resident = self.resident_count();
            let over_sessions = policy
                .max_resident_sessions
                .is_some_and(|m| resident + reserve_sessions > m.max(1));
            let bytes: usize = self
                .sessions
                .iter()
                .filter(|e| !e.done && !e.hibernated)
                .map(|e| e.session.resident_bytes())
                .sum();
            let over_bytes = policy
                .max_resident_bytes
                .is_some_and(|m| bytes.saturating_add(reserve_bytes) > m);
            if !(over_sessions || over_bytes) || resident <= min_keep {
                return;
            }
            // Coldest evictable resident session: least-recently stepped,
            // ties broken by insertion index.
            let Some(coldest) = self
                .sessions
                .iter()
                .enumerate()
                .filter(|(_, e)| !e.done && !e.hibernated && e.evictable)
                .min_by_key(|(i, e)| (e.last_stepped_round, *i))
                .map(|(i, _)| i)
            else {
                return;
            };
            let path = policy.spill_path(coldest);
            let entry = &mut self.sessions[coldest];
            let bytes_before = entry.session.resident_bytes();
            let _span = SpanGuard::new("serve.hibernate", "io", coldest as u64);
            let t0 = Instant::now();
            match entry.session.hibernate(&path) {
                Ok(()) => {
                    let elapsed = t0.elapsed();
                    entry.hibernated = true;
                    entry.parked_bytes = bytes_before;
                    entry.hibernations += 1;
                    entry.hibernate_wall += elapsed;
                    self.metrics.hibernations.incr();
                    self.metrics.hibernate_ns.add(elapsed.as_nanos() as u64);
                    // Budget-forced eviction and its successful spill: two
                    // journal entries so the bundle shows cause and effect.
                    journal_record(EventKind::Evict, coldest as u32, 0, 0, bytes as u64);
                    journal_record(
                        EventKind::Hibernate,
                        coldest as u32,
                        0,
                        0,
                        bytes_before as u64,
                    );
                }
                Err(_) => {
                    // Unsupported (or failed) — permanently exempt so the
                    // loop converges instead of retrying every round.
                    entry.evictable = false;
                }
            }
        }
    }

    fn rehydrate(&mut self, idx: usize) {
        let policy = self
            .policy
            .clone()
            .expect("hibernated sessions only exist under a policy");
        let path = policy.spill_path(idx);
        let entry = &mut self.sessions[idx];
        let _span = SpanGuard::new("serve.rehydrate", "io", idx as u64);
        let t0 = Instant::now();
        if let Err(e) = entry.session.rehydrate(&path) {
            // The spill file is the only copy of the session's state; not
            // being able to read it back is unrecoverable for this run.
            panic!(
                "failed to rehydrate session {idx} ('{}') from {}: {e}",
                entry.label,
                path.display()
            );
        }
        let elapsed = t0.elapsed();
        entry.hibernated = false;
        entry.rehydrations += 1;
        entry.rehydrate_wall += elapsed;
        self.metrics.rehydrations.incr();
        self.metrics.rehydrate_ns.add(elapsed.as_nanos() as u64);
        journal_record(
            EventKind::Rehydrate,
            idx as u32,
            0,
            0,
            elapsed.as_nanos() as u64,
        );
    }

    /// Runs all sessions to completion (or until shutdown), returning one
    /// outcome per session in insertion order.
    ///
    /// # Panics
    ///
    /// Re-raises the first panic of any session step; panics when a
    /// hibernated session cannot be rehydrated (its spill file is the only
    /// copy of its state) or the spill directory cannot be created.
    pub fn run(mut self) -> Vec<SessionOutcome<S::Report>> {
        if let Some(policy) = &self.policy {
            std::fs::create_dir_all(&policy.spill_dir).unwrap_or_else(|e| {
                panic!(
                    "cannot create spill directory {}: {e}",
                    policy.spill_dir.display()
                )
            });
        }
        let mut round: u64 = 0;
        while !self.stop.load(Ordering::SeqCst) && self.sessions.iter().any(|entry| !entry.done) {
            round += 1;
            // Readiness scan: sample each live session once so the park
            // decision and the spawn filter agree within the round. The
            // ingest signal version is captured *before* the scan — a frame
            // delivered after its session was scanned bumps the version, so
            // the park-wait below returns immediately instead of sleeping
            // through the delivery.
            let seen = self.ingest.as_ref().map(|hub| hub.signal().version());
            let mut live = 0usize;
            let mut idle = 0usize;
            for entry in self.sessions.iter_mut().filter(|e| !e.done) {
                live += 1;
                entry.ready_now = entry.session.ready();
                if !entry.ready_now {
                    entry.idle_rounds += 1;
                    idle += 1;
                }
            }
            self.metrics.idle_sessions.set(idle as i64);

            // Phase 1: every *ready* resident live session advances one
            // step; the steps run concurrently on the pool. Parked sessions
            // spawn no pool job at all.
            let fleet_step_ns: &Histogram = &self.metrics.step_ns;
            let fleet_steps: &Counter = &self.metrics.steps;
            self.pool.scope(|scope| {
                for (idx, entry) in self
                    .sessions
                    .iter_mut()
                    .enumerate()
                    .filter(|(_, entry)| !entry.done && !entry.hibernated && entry.ready_now)
                {
                    scope.spawn(move || {
                        let _span = SpanGuard::new("serve.step", "session", idx as u64);
                        let t0 = Instant::now();
                        let status = entry.session.step();
                        let elapsed = t0.elapsed();
                        match status {
                            SessionStatus::Idle => {
                                // The readiness probe raced a consumer: the
                                // no-op is not a step and takes no sample.
                                entry.idle_rounds += 1;
                            }
                            SessionStatus::Running | SessionStatus::Finished => {
                                entry.record_step(elapsed, round);
                                fleet_step_ns.record(elapsed.as_nanos() as u64);
                                fleet_steps.incr();
                                if status == SessionStatus::Finished {
                                    entry.done = true;
                                }
                            }
                        }
                    });
                }
            });

            // Phase 2: hibernated live sessions step one at a time, each
            // rehydrated just-in-time with the budget enforced before (make
            // room) and after (spill the new coldest) — so residency never
            // exceeds the budget mid-round.
            let parked: Vec<usize> = self
                .sessions
                .iter()
                .enumerate()
                .filter(|(_, e)| !e.done && e.hibernated && e.ready_now)
                .map(|(i, _)| i)
                .collect();
            for idx in parked {
                if self.stop.load(Ordering::SeqCst) {
                    break;
                }
                // Clear a residency slot *and* the memory headroom the
                // parked session reported when it was spilled, so the byte
                // budget holds during its step, not just between rounds.
                self.enforce_budget(1, self.sessions[idx].parked_bytes);
                self.rehydrate(idx);
                let entry = &mut self.sessions[idx];
                let span = SpanGuard::new("serve.step", "session", idx as u64);
                let t0 = Instant::now();
                let status = entry.session.step();
                let elapsed = t0.elapsed();
                drop(span);
                match status {
                    SessionStatus::Idle => {
                        entry.idle_rounds += 1;
                    }
                    SessionStatus::Running | SessionStatus::Finished => {
                        entry.record_step(elapsed, round);
                        self.metrics.step_ns.record(elapsed.as_nanos() as u64);
                        self.metrics.steps.incr();
                        if status == SessionStatus::Finished {
                            entry.done = true;
                        }
                    }
                }
                self.enforce_budget(0, 0);
            }

            // Budgets may be exceeded on the very first round (every
            // session starts resident) or after sessions finished.
            self.enforce_budget(0, 0);

            if self.snapshot_writer.is_some() {
                self.export_pool_stats();
                if let Some(writer) = &mut self.snapshot_writer {
                    writer.maybe_write(rtgs_telemetry::global()).ok();
                }
            }

            // Park the whole scheduler when every live session was idle:
            // block on the ingest signal (woken by the next delivery or
            // channel close) rather than spinning rounds. Without a hub a
            // short yield bounds the spin — `ready()` then has no
            // producer-side edge to wait on.
            if live > 0 && idle == live {
                match (&self.ingest, seen) {
                    (Some(hub), Some(seen)) => {
                        hub.signal().wait_past(seen, Duration::from_millis(1));
                    }
                    _ => std::thread::sleep(Duration::from_micros(200)),
                }
            }
        }

        // Collect: a hibernated session must be brought back before it can
        // report (graceful shutdown can leave sessions parked).
        let parked: Vec<usize> = self
            .sessions
            .iter()
            .enumerate()
            .filter(|(_, e)| e.hibernated)
            .map(|(i, _)| i)
            .collect();
        for idx in parked {
            self.rehydrate(idx);
        }
        if let Some(policy) = &self.policy {
            for idx in 0..self.sessions.len() {
                std::fs::remove_file(policy.spill_path(idx)).ok();
            }
        }

        // Drain replication streams before reports are taken: outstanding
        // records get acked (or typed-fail) and journals are fsynced, so
        // `frames_processed == frames_replicated + frames_dropped_by_policy`
        // holds in the final stats. On by default; an attached
        // ReplicationOptions can opt out. Failures are counted, not fatal —
        // the report still collects.
        let drain = self
            .replication
            .as_ref()
            .map_or(true, |options| options.drain_on_shutdown);
        if drain {
            let drain_failures =
                rtgs_telemetry::global().counter("serve.replication.drain_failures");
            for entry in &mut self.sessions {
                if entry.session.drain_replication().is_err() {
                    drain_failures.incr();
                    entry.drain_failed = true;
                }
            }
        }

        // Shutdown dump: one final registry export with fresh pool stats —
        // after the replication drain, so follower-lag gauges are settled.
        self.export_pool_stats();
        if let Some(writer) = &mut self.snapshot_writer {
            writer.write_now(rtgs_telemetry::global()).ok();
        }

        let budget_bytes = self
            .policy
            .as_ref()
            .and_then(|p| p.max_resident_bytes)
            .map(|b| b as u64);
        self.sessions
            .into_iter()
            .enumerate()
            .map(|(session, entry)| {
                let ingest = entry.session.ingest_stats();
                let replication = entry.session.replication_stats();
                let mut health = HealthReport::new(entry.label.clone());
                if let Some(ing) = &ingest {
                    health.ingest_backlog = ing
                        .offered
                        .saturating_sub(ing.processed)
                        .saturating_sub(ing.dropped());
                    health.degraded_frames = ing.degraded;
                    health.dropped_frames = ing.dropped();
                }
                if let Some(rep) = &replication {
                    health.replication_lag_frames = rep.frames_behind;
                }
                health.replication_failed = entry.drain_failed;
                health.resident_bytes = entry.session.resident_bytes() as u64;
                health.budget_bytes = budget_bytes;
                SessionOutcome {
                    stats: SessionStats {
                        session,
                        label: entry.label,
                        steps: entry.steps,
                        wall: entry.wall,
                        completed: entry.done,
                        hibernations: entry.hibernations,
                        rehydrations: entry.rehydrations,
                        hibernate_wall: entry.hibernate_wall,
                        rehydrate_wall: entry.rehydrate_wall,
                        idle_rounds: entry.idle_rounds,
                        ingest,
                        replication,
                        latency: entry.latency.snapshot(),
                        health,
                    },
                    report: entry.session.finish(),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter {
        target: usize,
        count: usize,
        log: Arc<std::sync::Mutex<Vec<usize>>>,
        id: usize,
        on_step: Option<ShutdownHandle>,
    }

    impl Session for Counter {
        type Report = usize;

        fn step(&mut self) -> SessionStatus {
            self.count += 1;
            self.log.lock().unwrap().push(self.id);
            if let Some(handle) = &self.on_step {
                handle.shutdown();
            }
            if self.count >= self.target {
                SessionStatus::Finished
            } else {
                SessionStatus::Running
            }
        }

        fn finish(self) -> usize {
            self.count
        }
    }

    fn counter(id: usize, target: usize, log: &Arc<std::sync::Mutex<Vec<usize>>>) -> Counter {
        Counter {
            target,
            count: 0,
            log: Arc::clone(log),
            id,
            on_step: None,
        }
    }

    #[test]
    fn all_sessions_complete_with_uneven_lengths() {
        let log = Arc::new(std::sync::Mutex::new(Vec::new()));
        let mut scheduler = SessionScheduler::new(2);
        for (id, target) in [(0, 3), (1, 7), (2, 1), (3, 5)] {
            scheduler.add_session(format!("s{id}"), counter(id, target, &log));
        }
        let outcomes = scheduler.run();
        assert_eq!(outcomes.len(), 4);
        for (outcome, target) in outcomes.iter().zip([3, 7, 1, 5]) {
            assert!(outcome.stats.completed);
            assert_eq!(outcome.stats.steps, target);
            assert_eq!(outcome.report, target);
            assert_eq!(outcome.stats.hibernations, 0);
            assert_eq!(outcome.stats.rehydrations, 0);
            assert_eq!(outcome.stats.hibernate_wall, Duration::ZERO);
            // Every step landed in the latency histogram.
            assert_eq!(outcome.stats.latency.count() as usize, target);
        }
        let fleet = fleet_latency(&outcomes);
        assert_eq!(fleet.count(), 3 + 7 + 1 + 5);
        assert!(fleet.p50() <= fleet.p999());
    }

    #[test]
    fn rounds_are_fair() {
        // With round-robin, after the log's first 2N entries every live
        // session has stepped exactly twice.
        let log = Arc::new(std::sync::Mutex::new(Vec::new()));
        let mut scheduler = SessionScheduler::new(3);
        for id in 0..4 {
            scheduler.add_session(format!("s{id}"), counter(id, 6, &log));
        }
        scheduler.run();
        let log = log.lock().unwrap();
        for round in 0..6 {
            let mut ids: Vec<usize> = log[round * 4..(round + 1) * 4].to_vec();
            ids.sort_unstable();
            assert_eq!(ids, vec![0, 1, 2, 3], "round {round} not fair: {log:?}");
        }
    }

    #[test]
    fn graceful_shutdown_yields_partial_reports() {
        let log = Arc::new(std::sync::Mutex::new(Vec::new()));
        let mut scheduler = SessionScheduler::new(2);
        let handle = scheduler.shutdown_handle();
        let mut first = counter(0, 1000, &log);
        // The first session requests shutdown on its first step.
        first.on_step = Some(handle);
        scheduler.add_session("canceller", first);
        scheduler.add_session("long", counter(1, 1000, &log));
        let outcomes = scheduler.run();
        assert_eq!(outcomes.len(), 2);
        for outcome in &outcomes {
            assert!(!outcome.stats.completed);
            assert!(outcome.stats.steps >= 1);
            assert!(outcome.stats.steps < 1000, "shutdown was not graceful");
            assert_eq!(outcome.report, outcome.stats.steps);
        }
    }

    #[test]
    fn empty_scheduler_returns_no_outcomes() {
        let scheduler: SessionScheduler<Counter> = SessionScheduler::new(1);
        assert!(scheduler.run().is_empty());
    }

    #[test]
    fn non_hibernatable_sessions_are_never_evicted() {
        // Counters use the default (unsupported) hibernate: a residency
        // budget must not stall or drop them.
        let log = Arc::new(std::sync::Mutex::new(Vec::new()));
        let mut scheduler = SessionScheduler::new(2);
        scheduler.set_eviction_policy(
            EvictionPolicy::new(test_dir("never-evict")).with_max_resident_sessions(1),
        );
        for id in 0..3 {
            scheduler.add_session(format!("s{id}"), counter(id, 4, &log));
        }
        let outcomes = scheduler.run();
        for outcome in &outcomes {
            assert!(outcome.stats.completed);
            assert_eq!(outcome.stats.steps, 4);
            assert_eq!(outcome.stats.hibernations, 0);
        }
    }

    // -- Hibernatable test session ------------------------------------------

    /// Tracks global residency so tests can assert the budget held at
    /// every observation point.
    struct Spillable {
        count: usize,
        target: usize,
        resident: Arc<std::sync::Mutex<ResidencyProbe>>,
        bytes: usize,
    }

    #[derive(Default)]
    struct ResidencyProbe {
        /// Live (unfinished) sessions currently resident.
        resident_now: usize,
        /// Whether any hibernation has happened yet (all sessions start
        /// resident, so the watermark arms at the first spill).
        armed: bool,
        /// Peak live residency observed since the first hibernation.
        peak_since_first_spill: usize,
    }

    impl Spillable {
        fn new(target: usize, bytes: usize, probe: &Arc<std::sync::Mutex<ResidencyProbe>>) -> Self {
            probe.lock().unwrap().resident_now += 1;
            Self {
                count: 0,
                target,
                resident: Arc::clone(probe),
                bytes,
            }
        }
    }

    impl Session for Spillable {
        type Report = usize;

        fn step(&mut self) -> SessionStatus {
            self.count += 1;
            if self.count >= self.target {
                // A finished session leaves the scheduler's residency
                // accounting; mirror that in the probe.
                self.resident.lock().unwrap().resident_now -= 1;
                SessionStatus::Finished
            } else {
                SessionStatus::Running
            }
        }

        fn finish(self) -> usize {
            self.count
        }

        fn resident_bytes(&self) -> usize {
            self.bytes
        }

        fn hibernate(&mut self, path: &Path) -> Result<(), SessionIoError> {
            std::fs::write(path, self.count.to_le_bytes())?;
            let mut p = self.resident.lock().unwrap();
            p.resident_now -= 1;
            p.armed = true;
            // Model the memory release: the count lives on disk now.
            self.count = usize::MAX;
            Ok(())
        }

        fn rehydrate(&mut self, path: &Path) -> Result<(), SessionIoError> {
            let bytes = std::fs::read(path)?;
            let arr: [u8; 8] = bytes
                .try_into()
                .map_err(|_| SessionIoError::Snapshot("bad spill file".into()))?;
            self.count = usize::from_le_bytes(arr);
            let mut p = self.resident.lock().unwrap();
            p.resident_now += 1;
            if p.armed {
                p.peak_since_first_spill = p.peak_since_first_spill.max(p.resident_now);
            }
            Ok(())
        }
    }

    fn test_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rtgs-sched-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn residency_budget_is_respected_and_all_complete() {
        let probe = Arc::new(std::sync::Mutex::new(ResidencyProbe::default()));
        let mut scheduler = SessionScheduler::new(2);
        scheduler.set_eviction_policy(
            EvictionPolicy::new(test_dir("budget")).with_max_resident_sessions(2),
        );
        for _ in 0..5 {
            scheduler.add_session("spillable", Spillable::new(4, 0, &probe));
        }
        let outcomes = scheduler.run();
        assert_eq!(outcomes.len(), 5);
        let mut total_hibernations = 0;
        for outcome in &outcomes {
            assert!(outcome.stats.completed);
            assert_eq!(outcome.stats.steps, 4);
            assert_eq!(outcome.report, 4, "state lost across hibernation");
            total_hibernations += outcome.stats.hibernations;
        }
        assert!(
            total_hibernations > 0,
            "a 2-resident budget over 5 sessions must hibernate someone"
        );
        // Spill I/O is accounted: every hibernation has a matching wall
        // charge, and rehydrations bring each parked session back.
        for outcome in &outcomes {
            if outcome.stats.hibernations > 0 {
                assert!(outcome.stats.rehydrations > 0);
                assert!(outcome.stats.hibernate_wall > Duration::ZERO);
                assert!(outcome.stats.rehydrate_wall > Duration::ZERO);
            } else {
                assert_eq!(outcome.stats.rehydrate_wall, Duration::ZERO);
            }
        }
        // The property the test is named for: once eviction kicked in,
        // live residency never exceeded the 2-session budget — the
        // just-in-time rehydration clears a slot *before* bringing a
        // session back, so the cap holds mid-round, not just at round
        // boundaries.
        let p = probe.lock().unwrap();
        assert!(p.armed, "watermark never armed despite hibernations");
        assert!(
            p.peak_since_first_spill <= 2,
            "live residency peaked at {} under a 2-session budget",
            p.peak_since_first_spill
        );
        assert_eq!(p.resident_now, 0, "all sessions finished");
    }

    #[test]
    fn memory_budget_triggers_eviction() {
        let probe = Arc::new(std::sync::Mutex::new(ResidencyProbe::default()));
        let mut scheduler = SessionScheduler::new(2);
        scheduler.set_eviction_policy(
            EvictionPolicy::new(test_dir("membudget")).with_max_resident_bytes(250),
        );
        for _ in 0..3 {
            // 3 x 100 bytes > 250: at least one session must spill.
            scheduler.add_session("hundred", Spillable::new(3, 100, &probe));
        }
        let outcomes = scheduler.run();
        let total: usize = outcomes.iter().map(|o| o.stats.hibernations).sum();
        assert!(total > 0, "memory budget never triggered");
        for outcome in &outcomes {
            assert!(outcome.stats.completed);
            assert_eq!(outcome.report, 3);
        }
        // Rehydration reserves the parked session's bytes before bringing
        // it back, so 3 × 100-byte sessions never exceed the 250-byte
        // budget once eviction is active (2 × 100 = 200 is the ceiling).
        let p = probe.lock().unwrap();
        assert!(
            p.peak_since_first_spill <= 2,
            "byte budget violated mid-round: {} sessions resident",
            p.peak_since_first_spill
        );
    }

    #[test]
    fn shutdown_while_hibernated_still_reports() {
        let probe = Arc::new(std::sync::Mutex::new(ResidencyProbe::default()));
        let mut scheduler = SessionScheduler::new(2);
        scheduler.set_eviction_policy(
            EvictionPolicy::new(test_dir("shutdown")).with_max_resident_sessions(1),
        );
        let handle = scheduler.shutdown_handle();
        for _ in 0..3 {
            scheduler.add_session("spillable", Spillable::new(100, 0, &probe));
        }
        // Stop after a couple of rounds, while at least one session is
        // parked on disk.
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            handle.shutdown();
        });
        let outcomes = scheduler.run();
        for outcome in &outcomes {
            // Hibernated sessions were rehydrated before finish: the
            // report reflects their true step count, not the spilled
            // placeholder.
            assert_eq!(outcome.report, outcome.stats.steps);
        }
    }
}
