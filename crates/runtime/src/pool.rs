//! A std-only work-stealing thread pool with scoped (borrow-friendly)
//! task execution.
//!
//! Design: each worker owns a local deque; `spawn` from a worker pushes to
//! that worker's deque (LIFO pop for cache locality), `spawn` from any other
//! thread pushes to a shared injector queue (FIFO). Idle workers drain their
//! own deque, then the injector, then steal from siblings (FIFO end, the
//! classic Chase–Lev discipline approximated with mutexed deques — the
//! workloads this pool serves are coarse chunks, so queue contention is not
//! the bottleneck).
//!
//! Threads waiting for a scope to drain *help* execute queued work instead
//! of blocking. This makes nested use safe: a session step running on a
//! worker may itself fan out render chunks on the same pool without
//! deadlocking, even on a single-worker pool.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

type JobFn = Box<dyn FnOnce() + Send + 'static>;

/// A queued task, tagged with the identity of the scope that spawned it so
/// scope waiters can help with their *own* work without executing
/// unrelated tasks (which would distort callers' timing and nest foreign
/// work inside their stack frames).
struct Job {
    scope: usize,
    run: JobFn,
}

struct Shared {
    /// FIFO queue for jobs submitted from outside the pool.
    injector: Mutex<VecDeque<Job>>,
    /// Per-worker deques (own end: back; steal end: front).
    locals: Vec<Mutex<VecDeque<Job>>>,
    /// Signalled whenever a job is pushed.
    jobs_available: Condvar,
    /// Guards the sleep/wake handshake.
    sleep_lock: Mutex<()>,
    /// Jobs pushed but not yet popped.
    queued: AtomicUsize,
    shutdown: AtomicBool,
    /// Telemetry: jobs ever pushed, cross-deque steals, worker parks.
    jobs: AtomicU64,
    steals: AtomicU64,
    parks: AtomicU64,
}

/// Removes the most appropriate job from one deque: the back (LIFO) for an
/// owner, the front (FIFO) for the injector/steals — optionally restricted
/// to jobs of one scope.
fn take_from(deque: &mut VecDeque<Job>, from_back: bool, only_scope: Option<usize>) -> Option<Job> {
    match only_scope {
        None => {
            if from_back {
                deque.pop_back()
            } else {
                deque.pop_front()
            }
        }
        Some(tag) => {
            let position = if from_back {
                deque.iter().rposition(|job| job.scope == tag)
            } else {
                deque.iter().position(|job| job.scope == tag)
            };
            position.and_then(|i| deque.remove(i))
        }
    }
}

impl Shared {
    /// Pops one job: own deque first (LIFO), then the injector, then steals
    /// round-robin from siblings (FIFO). With `only_scope`, jobs of other
    /// scopes are left in place (used by helping scope waiters).
    fn pop_job(&self, own: Option<usize>, only_scope: Option<usize>) -> Option<Job> {
        if let Some(i) = own {
            if let Some(job) = take_from(&mut self.locals[i].lock().unwrap(), true, only_scope) {
                self.queued.fetch_sub(1, Ordering::Relaxed);
                return Some(job);
            }
        }
        if let Some(job) = take_from(&mut self.injector.lock().unwrap(), false, only_scope) {
            self.queued.fetch_sub(1, Ordering::Relaxed);
            return Some(job);
        }
        let n = self.locals.len();
        let start = own.unwrap_or(0);
        for k in 1..=n {
            let victim = (start + k) % n;
            if Some(victim) == own {
                continue;
            }
            if let Some(job) =
                take_from(&mut self.locals[victim].lock().unwrap(), false, only_scope)
            {
                self.queued.fetch_sub(1, Ordering::Relaxed);
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some(job);
            }
        }
        None
    }

    fn push_job(&self, job: Job, own: Option<usize>) {
        match own {
            Some(i) => self.locals[i].lock().unwrap().push_back(job),
            None => self.injector.lock().unwrap().push_back(job),
        }
        self.queued.fetch_add(1, Ordering::Relaxed);
        self.jobs.fetch_add(1, Ordering::Relaxed);
        // Take the sleep lock so a worker between its queue check and its
        // condvar wait cannot miss this notification.
        let _guard = self.sleep_lock.lock().unwrap();
        self.jobs_available.notify_all();
    }
}

thread_local! {
    /// `(pool identity, worker index)` of the current thread, if it is a
    /// pool worker.
    static CURRENT_WORKER: std::cell::Cell<Option<(usize, usize)>> =
        const { std::cell::Cell::new(None) };
}

/// Cumulative scheduling counters for one pool: jobs ever pushed, jobs taken
/// from another worker's deque (steals), and idle condvar parks. Cheap
/// relaxed counters, exported by the serving layer as pool-utilization
/// telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Jobs pushed onto the pool (local deques + injector).
    pub jobs: u64,
    /// Jobs popped from a sibling worker's deque.
    pub steals: u64,
    /// Times a worker went to sleep on the idle condvar.
    pub parks: u64,
}

/// A fixed-size work-stealing thread pool.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.workers.len())
            .finish()
    }
}

impl ThreadPool {
    /// Spawns a pool with `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            injector: Mutex::new(VecDeque::new()),
            locals: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            jobs_available: Condvar::new(),
            sleep_lock: Mutex::new(()),
            queued: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            jobs: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            parks: AtomicU64::new(0),
        });
        let pool_id = Arc::as_ptr(&shared) as usize;
        let workers = (0..threads)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("rtgs-worker-{index}"))
                    .spawn(move || worker_loop(&shared, pool_id, index))
                    .expect("spawning pool worker")
            })
            .collect();
        Self { shared, workers }
    }

    /// A pool sized to the machine (`available_parallelism`, at least 1).
    pub fn with_default_size() -> Self {
        let n = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        Self::new(n)
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Cumulative scheduling counters since the pool was created.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            jobs: self.shared.jobs.load(Ordering::Relaxed),
            steals: self.shared.steals.load(Ordering::Relaxed),
            parks: self.shared.parks.load(Ordering::Relaxed),
        }
    }

    fn identity(&self) -> usize {
        Arc::as_ptr(&self.shared) as usize
    }

    /// Worker index of the calling thread *within this pool*, if any.
    fn current_worker(&self) -> Option<usize> {
        CURRENT_WORKER.with(|w| match w.get() {
            Some((id, index)) if id == self.identity() => Some(index),
            _ => None,
        })
    }

    fn push(&self, job: Job) {
        self.shared.push_job(job, self.current_worker());
    }

    /// Runs `f` with a [`Scope`] on which borrowing tasks can be spawned;
    /// returns once every spawned task has completed.
    ///
    /// The calling thread helps execute queued work while it waits, so
    /// scopes may be nested (tasks may themselves open scopes on the same
    /// pool) without deadlock.
    ///
    /// # Panics
    ///
    /// Re-raises the first panic of any spawned task (after all tasks have
    /// settled), or the closure's own panic.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&Scope<'_, 'env>) -> R,
    {
        let state = Arc::new(ScopeState {
            remaining: AtomicUsize::new(0),
            panic: Mutex::new(None),
            done_lock: Mutex::new(()),
            done: Condvar::new(),
        });
        let scope = Scope {
            pool: self,
            state: Arc::clone(&state),
            _env: std::marker::PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));

        // Drain: help run queued jobs of THIS scope until every spawned
        // task finished. Restricting helping to the scope's own jobs keeps
        // unrelated work (e.g. another session's step) out of this thread's
        // stack frame and timing window.
        let own = self.current_worker();
        let tag = Arc::as_ptr(&state) as usize;
        while state.remaining.load(Ordering::Acquire) > 0 {
            if let Some(job) = self.shared.pop_job(own, Some(tag)) {
                (job.run)();
            } else {
                let guard = state.done_lock.lock().unwrap();
                if state.remaining.load(Ordering::Acquire) > 0 {
                    // Bounded wait: completions notify `done` under this
                    // lock, but a job of this scope may also *spawn* new
                    // scope jobs (signalled on the pool's other condvar),
                    // so poll briefly instead of waiting forever.
                    let _ = state
                        .done
                        .wait_timeout(guard, Duration::from_millis(1))
                        .unwrap();
                }
            }
        }

        if let Some(payload) = state.panic.lock().unwrap().take() {
            resume_unwind(payload);
        }
        match result {
            Ok(r) => r,
            Err(payload) => resume_unwind(payload),
        }
    }

    /// Splits `0..len` into `chunk_size`-sized chunks and runs `body`
    /// concurrently as `body(chunk_index, range)`.
    ///
    /// The chunk geometry depends only on `len` and `chunk_size` — never on
    /// the worker count — which is what lets callers build bitwise-
    /// deterministic reductions on top (fold chunk results in index order).
    pub fn for_each_chunk(
        &self,
        len: usize,
        chunk_size: usize,
        body: &(dyn Fn(usize, std::ops::Range<usize>) + Sync),
    ) {
        let chunk_size = chunk_size.max(1);
        if len == 0 {
            return;
        }
        let chunks = len.div_ceil(chunk_size);
        if chunks == 1 {
            body(0, 0..len);
            return;
        }
        self.scope(|scope| {
            for index in 0..chunks {
                let start = index * chunk_size;
                let end = (start + chunk_size).min(len);
                scope.spawn(move || body(index, start..end));
            }
        });
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        {
            let _guard = self.shared.sleep_lock.lock().unwrap();
            self.shared.jobs_available.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared, pool_id: usize, index: usize) {
    CURRENT_WORKER.with(|w| w.set(Some((pool_id, index))));
    loop {
        if let Some(job) = shared.pop_job(Some(index), None) {
            (job.run)();
            continue;
        }
        let guard = shared.sleep_lock.lock().unwrap();
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if shared.queued.load(Ordering::Relaxed) > 0 {
            continue;
        }
        // Untimed park is safe: every push takes `sleep_lock` after
        // incrementing `queued` and before `notify_all`, and this thread
        // re-checked `queued`/`shutdown` while holding the lock — no
        // wake-up can be lost, and idle workers burn no cycles.
        shared.parks.fetch_add(1, Ordering::Relaxed);
        let _unused = shared.jobs_available.wait(guard).unwrap();
    }
}

struct ScopeState {
    remaining: AtomicUsize,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    done_lock: Mutex<()>,
    done: Condvar,
}

/// Spawn handle passed to [`ThreadPool::scope`] closures. Tasks may borrow
/// from the environment (`'env`).
pub struct Scope<'pool, 'env> {
    pool: &'pool ThreadPool,
    state: Arc<ScopeState>,
    _env: std::marker::PhantomData<&'env mut &'env ()>,
}

impl<'env> Scope<'_, 'env> {
    /// Spawns a task; the scope will not exit until it completes.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        self.state.remaining.fetch_add(1, Ordering::AcqRel);
        let tag = Arc::as_ptr(&self.state) as usize;
        let state = Arc::clone(&self.state);
        let job: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            let result = catch_unwind(AssertUnwindSafe(f));
            if let Err(payload) = result {
                let mut slot = state.panic.lock().unwrap();
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            if state.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                let _guard = state.done_lock.lock().unwrap();
                state.done.notify_all();
            }
        });
        // SAFETY: `scope` does not return (normally or by unwinding) until
        // `remaining` reaches zero, i.e. until this job has run to
        // completion, so every `'env` borrow the job captures outlives the
        // job. This is the same lifetime-erasure argument scoped-thread
        // libraries rely on.
        let run: JobFn =
            unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, JobFn>(job) };
        self.pool.push(Job { scope: tag, run });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn scope_runs_all_tasks() {
        let pool = ThreadPool::new(4);
        let counter = AtomicU64::new(0);
        pool.scope(|s| {
            for _ in 0..100 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn tasks_can_borrow_stack_data() {
        let pool = ThreadPool::new(2);
        let mut results = vec![0u64; 64];
        pool.scope(|s| {
            for (i, slot) in results.iter_mut().enumerate() {
                s.spawn(move || *slot = (i as u64) * 2);
            }
        });
        assert!(results.iter().enumerate().all(|(i, &v)| v == i as u64 * 2));
    }

    #[test]
    fn for_each_chunk_covers_range_exactly_once() {
        let pool = ThreadPool::new(3);
        let len = 1001;
        let hits: Vec<AtomicUsize> = (0..len).map(|_| AtomicUsize::new(0)).collect();
        pool.for_each_chunk(len, 64, &|_, range| {
            for i in range {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        // A single worker forces the outer task's inner scope to be drained
        // by helping — the deadlock case if waiting were blocking.
        let pool = ThreadPool::new(1);
        let total = AtomicU64::new(0);
        pool.scope(|outer| {
            for _ in 0..4 {
                outer.spawn(|| {
                    pool.scope(|inner| {
                        for _ in 0..4 {
                            inner.spawn(|| {
                                total.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn panics_propagate_after_settling() {
        let pool = ThreadPool::new(2);
        let completed = Arc::new(AtomicU64::new(0));
        let completed2 = Arc::clone(&completed);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("task failure"));
                s.spawn(move || {
                    completed2.fetch_add(1, Ordering::Relaxed);
                });
            });
        }));
        assert!(result.is_err());
        assert_eq!(completed.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn stats_count_jobs_and_observe_steals() {
        let pool = ThreadPool::new(4);
        let start = pool.stats();
        assert_eq!(start.jobs, 0);
        assert_eq!(start.steals, 0);
        let counter = AtomicU64::new(0);
        pool.scope(|s| {
            for _ in 0..256 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        let stats = pool.stats();
        assert_eq!(stats.jobs, 256);
        // Steals and parks are scheduling-dependent; just require sanity.
        assert!(stats.steals <= stats.jobs);
    }

    #[test]
    fn pool_survives_many_scopes() {
        let pool = ThreadPool::new(2);
        for round in 0..50 {
            let sum = AtomicU64::new(0);
            pool.scope(|s| {
                for i in 0..8 {
                    let sum = &sum;
                    s.spawn(move || {
                        sum.fetch_add(i, Ordering::Relaxed);
                    });
                }
            });
            assert_eq!(sum.load(Ordering::Relaxed), 28, "round {round}");
        }
    }
}
