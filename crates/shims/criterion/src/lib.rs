//! Std-only stand-in for the subset of the `criterion` API used by this
//! workspace's benchmarks.
//!
//! The build environment is offline, so the workspace vendors a minimal
//! harness: it supports `benchmark_group`, `bench_function`,
//! `bench_with_input`, `sample_size`, `measurement_time`, `BenchmarkId` and
//! the `criterion_group!` / `criterion_main!` macros. Each benchmark is
//! warmed up, sampled, and summarized (min / median / mean); all results are
//! additionally appended to `BENCH_RESULTS.json` at the workspace root so
//! the performance trajectory is machine-readable across PRs.
//!
//! # Quick mode
//!
//! Setting `BENCH_QUICK=1` (any non-empty value other than `0`) caps every
//! group at [`QUICK_MAX_SAMPLES`] samples and [`QUICK_MAX_MEASUREMENT`] of
//! measurement wall-clock, overriding whatever the benchmarks request. The
//! CI `perf-smoke` job uses this to finish the whole suite in minutes while
//! keeping medians meaningful enough for a coarse (>25%) regression gate.

use std::fmt::Display;
use std::path::PathBuf;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Sample-count cap applied per benchmark when `BENCH_QUICK` is set.
pub const QUICK_MAX_SAMPLES: usize = 3;

/// Measurement wall-clock cap per benchmark when `BENCH_QUICK` is set.
pub const QUICK_MAX_MEASUREMENT: Duration = Duration::from_millis(400);

/// Whether quick mode is active (`BENCH_QUICK` set to a non-empty value
/// other than `0`). Read once per process.
pub fn quick_mode() -> bool {
    static QUICK: OnceLock<bool> = OnceLock::new();
    *QUICK.get_or_init(|| {
        std::env::var("BENCH_QUICK")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false)
    })
}

/// Clamps a requested sample count to the quick-mode cap when active.
fn clamp_samples(n: usize, quick: bool) -> usize {
    if quick {
        n.clamp(1, QUICK_MAX_SAMPLES)
    } else {
        n.max(1)
    }
}

/// Clamps a requested measurement time to the quick-mode cap when active.
fn clamp_measurement(d: Duration, quick: bool) -> Duration {
    if quick {
        d.min(QUICK_MAX_MEASUREMENT)
    } else {
        d
    }
}

/// One benchmark measurement.
#[derive(Debug, Clone)]
pub struct Record {
    /// Group name.
    pub group: String,
    /// Benchmark id within the group.
    pub bench: String,
    /// Per-iteration nanoseconds, one entry per sample.
    pub samples_ns: Vec<u128>,
}

impl Record {
    fn min_ns(&self) -> u128 {
        self.samples_ns.iter().copied().min().unwrap_or(0)
    }

    fn median_ns(&self) -> u128 {
        let mut s = self.samples_ns.clone();
        s.sort_unstable();
        if s.is_empty() {
            0
        } else {
            s[s.len() / 2]
        }
    }

    fn mean_ns(&self) -> u128 {
        if self.samples_ns.is_empty() {
            0
        } else {
            self.samples_ns.iter().sum::<u128>() / self.samples_ns.len() as u128
        }
    }
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` id.
    pub fn new<S: Display, P: Display>(name: S, parameter: P) -> Self {
        Self {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Id from a parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

/// Passed to the closure given to `iter`; times the closure body.
pub struct Bencher {
    samples_ns: Vec<u128>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher {
    /// Runs `f` repeatedly, recording one timing sample per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up call.
        let _ = f();
        let started = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            let out = f();
            self.samples_ns.push(t0.elapsed().as_nanos());
            drop(out);
            if started.elapsed() > self.measurement_time {
                break;
            }
        }
    }
}

/// A named collection of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark (clamped in quick mode).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = clamp_samples(n, quick_mode());
        self
    }

    /// Caps the measurement wall-clock per benchmark (clamped in quick
    /// mode).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = clamp_measurement(d, quick_mode());
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples_ns: Vec::new(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
        };
        f(&mut bencher);
        self.record(id, bencher.samples_ns);
        self
    }

    /// Runs one benchmark parameterized by an input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples_ns: Vec::new(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
        };
        f(&mut bencher, input);
        self.record(id, bencher.samples_ns);
        self
    }

    /// Finishes the group (results are flushed when the harness exits).
    pub fn finish(&mut self) {}

    fn record(&mut self, id: BenchmarkId, samples_ns: Vec<u128>) {
        let record = Record {
            group: self.name.clone(),
            bench: id.id,
            samples_ns,
        };
        println!(
            "{:<28} {:<36} min {:>12}  median {:>12}  mean {:>12}  ({} samples)",
            record.group,
            record.bench,
            format_ns(record.min_ns()),
            format_ns(record.median_ns()),
            format_ns(record.mean_ns()),
            record.samples_ns.len(),
        );
        self.criterion.records.push(record);
    }
}

fn format_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// The harness entry object.
#[derive(Default)]
pub struct Criterion {
    records: Vec<Record>,
}

impl Criterion {
    /// Starts a benchmark group (defaults clamped in quick mode).
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let quick = quick_mode();
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: clamp_samples(10, quick),
            measurement_time: clamp_measurement(Duration::from_secs(2), quick),
        }
    }

    /// Writes all recorded results as JSON to `BENCH_RESULTS.json` at the
    /// workspace root (falls back to the current directory).
    pub fn flush_json(&self) {
        if self.records.is_empty() {
            return;
        }
        let mut json = String::from("[\n");
        for (i, r) in self.records.iter().enumerate() {
            if i > 0 {
                json.push_str(",\n");
            }
            json.push_str(&format!(
                "  {{\"group\": \"{}\", \"bench\": \"{}\", \"min_ns\": {}, \"median_ns\": {}, \"mean_ns\": {}, \"samples\": {}}}",
                escape(&r.group),
                escape(&r.bench),
                r.min_ns(),
                r.median_ns(),
                r.mean_ns(),
                r.samples_ns.len(),
            ));
        }
        json.push_str("\n]\n");
        let path = workspace_root().join("BENCH_RESULTS.json");
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            println!("\nwrote {}", path.display());
        }
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Locates the workspace root by walking up from the manifest directory
/// looking for a `Cargo.toml` declaring `[workspace]`.
fn workspace_root() -> PathBuf {
    let start = std::env::var("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .or_else(|_| std::env::current_dir())
        .unwrap_or_else(|_| PathBuf::from("."));
    let mut dir = start.clone();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(content) = std::fs::read_to_string(&manifest) {
            if content.contains("[workspace]") {
                return dir;
            }
        }
        match dir.parent() {
            Some(p) => dir = p.to_path_buf(),
            None => return start,
        }
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the harness `main` running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` appends `--bench`; any other flag (e.g. a
            // filter) is accepted and ignored by this minimal harness.
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            c.flush_json();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_records_samples() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3)
                .measurement_time(Duration::from_millis(100));
            g.bench_function("noop", |b| b.iter(|| 1 + 1));
            g.bench_with_input(BenchmarkId::new("param", 4), &4usize, |b, &n| {
                b.iter(|| n * 2)
            });
            g.finish();
        }
        assert_eq!(c.records.len(), 2);
        assert!(!c.records[0].samples_ns.is_empty());
        assert_eq!(c.records[1].bench, "param/4");
    }

    #[test]
    fn quick_clamps_apply_only_in_quick_mode() {
        assert_eq!(clamp_samples(10, true), QUICK_MAX_SAMPLES);
        assert_eq!(clamp_samples(2, true), 2);
        assert_eq!(clamp_samples(0, true), 1);
        assert_eq!(clamp_samples(10, false), 10);
        assert_eq!(
            clamp_measurement(Duration::from_secs(3), true),
            QUICK_MAX_MEASUREMENT
        );
        assert_eq!(
            clamp_measurement(Duration::from_millis(100), true),
            Duration::from_millis(100)
        );
        assert_eq!(
            clamp_measurement(Duration::from_secs(3), false),
            Duration::from_secs(3)
        );
    }

    #[test]
    fn record_stats_are_ordered() {
        let r = Record {
            group: "g".into(),
            bench: "b".into(),
            samples_ns: vec![30, 10, 20],
        };
        assert_eq!(r.min_ns(), 10);
        assert_eq!(r.median_ns(), 20);
        assert_eq!(r.mean_ns(), 20);
    }
}
