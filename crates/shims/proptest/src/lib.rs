//! Std-only stand-in for the subset of the `proptest` API used by this
//! workspace.
//!
//! The build environment is offline, so the workspace vendors what it needs:
//! range / tuple strategies, `prop_map` / `prop_filter`, `collection::vec`,
//! `array::uniform3`, and the `proptest!` / `prop_assert*` / `prop_assume!`
//! macros. Differences from real proptest: no shrinking (a failing case
//! reports the panic message of the assertion, not a minimized input), and
//! rejection budgets are per-strategy rather than global. Case generation is
//! deterministic per test (seeded from the test's module path and name).

use rand::rngs::StdRng;
use rand::Rng;

/// Runner configuration. Only the case count is modeled.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A generator of values of one type.
///
/// Unlike real proptest there is no shrinking; `generate` returning `None`
/// signals a rejected case (filter failure) and the runner redraws.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value, or `None` when a filter rejected the draw.
    fn generate(&self, rng: &mut StdRng) -> Option<Self::Value>;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Rejects generated values failing `pred`. `reason` is reported if the
    /// rejection budget is exhausted.
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> Option<O> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    /// Kept for parity with real proptest's diagnostics.
    #[allow(dead_code)]
    reason: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
        let v = self.inner.generate(rng)?;
        if (self.pred)(&v) {
            Some(v)
        } else {
            None
        }
    }
}

/// The rejection budget per drawn value before the runner gives up.
const MAX_REJECTS: u32 = 4096;

/// Draws one accepted value from a strategy, retrying rejected draws.
///
/// # Panics
///
/// Panics when the strategy rejects `MAX_REJECTS` draws in a row.
pub fn sample<S: Strategy>(strategy: &S, rng: &mut StdRng) -> S::Value {
    for _ in 0..MAX_REJECTS {
        if let Some(v) = strategy.generate(rng) {
            return v;
        }
    }
    panic!("strategy rejected {MAX_REJECTS} consecutive draws (filter too strict)");
}

/// Deterministic per-test seed from the test's full name.
pub fn seed_from_name(name: &str) -> u64 {
    // FNV-1a.
    let mut h = 0xcbf29ce484222325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

macro_rules! range_strategy {
    ($t:ty) => {
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> Option<$t> {
                Some(rng.gen_range(self.clone()))
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> Option<$t> {
                Some(rng.gen_range(self.clone()))
            }
        }
    };
}
range_strategy!(f32);
range_strategy!(f64);
range_strategy!(usize);
range_strategy!(u8);
range_strategy!(u16);
range_strategy!(u32);
range_strategy!(u64);
range_strategy!(i8);
range_strategy!(i16);
range_strategy!(i32);
range_strategy!(i64);

/// A strategy always producing the same value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> Option<T> {
        Some(self.0.clone())
    }
}

macro_rules! tuple_strategy {
    ($($s:ident.$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Option<Self::Value> {
                Some(($(self.$idx.generate(rng)?,)+))
            }
        }
    };
}
tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

/// `prop::collection` and `prop::array` equivalents.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// Strategy for `Vec<S::Value>` with a length drawn from a range.
        pub struct VecStrategy<S> {
            element: S,
            len: core::ops::Range<usize>,
        }

        /// Length specifications accepted by [`vec()`]: a `usize` (exact
        /// length) or a `Range<usize>`.
        pub trait IntoSizeRange {
            /// The half-open length range.
            fn into_size_range(self) -> core::ops::Range<usize>;
        }

        impl IntoSizeRange for usize {
            fn into_size_range(self) -> core::ops::Range<usize> {
                self..self + 1
            }
        }

        impl IntoSizeRange for core::ops::Range<usize> {
            fn into_size_range(self) -> core::ops::Range<usize> {
                self
            }
        }

        /// Generates vectors whose length is drawn uniformly from `len`.
        pub fn vec<S: Strategy>(element: S, len: impl IntoSizeRange) -> VecStrategy<S> {
            VecStrategy {
                element,
                len: len.into_size_range(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut StdRng) -> Option<Self::Value> {
                let n = rng.gen_range(self.len.clone());
                let mut out = Vec::with_capacity(n);
                for _ in 0..n {
                    out.push(self.element.generate(rng)?);
                }
                Some(out)
            }
        }
    }

    /// Fixed-size array strategies.
    pub mod array {
        use super::super::Strategy;
        use rand::rngs::StdRng;

        /// Strategy for `[S::Value; 3]` from one element strategy.
        pub struct Uniform3<S>(S);

        /// Generates `[T; 3]` with each element drawn from `element`.
        pub fn uniform3<S: Strategy>(element: S) -> Uniform3<S> {
            Uniform3(element)
        }

        impl<S: Strategy> Strategy for Uniform3<S> {
            type Value = [S::Value; 3];
            fn generate(&self, rng: &mut StdRng) -> Option<Self::Value> {
                Some([
                    self.0.generate(rng)?,
                    self.0.generate(rng)?,
                    self.0.generate(rng)?,
                ])
            }
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use super::prop;
    pub use super::{sample, seed_from_name, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;
}

/// Asserts a condition inside a property; failure fails the whole test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+)
    };
}

/// Rejects the current case; the runner redraws without counting it.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        // Bound to a plain bool first so negating it cannot trip the
        // partial-ord comparison lints at the call site.
        let __prop_assume_holds: bool = $cond;
        if !__prop_assume_holds {
            return false;
        }
    };
}

/// Declares property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of
/// `#[test] fn name(pattern in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[allow(clippy::redundant_closure_call)]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = <$crate::prelude::StdRng as $crate::prelude::SeedableRng>::seed_from_u64(
                $crate::seed_from_name(concat!(module_path!(), "::", stringify!($name))),
            );
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            while accepted < config.cases {
                $(let $pat = $crate::sample(&($strat), &mut rng);)+
                // The case body runs in a closure so `prop_assume!` can
                // reject the case by returning `false`.
                let case_accepted = (|| -> bool {
                    $body
                    true
                })();
                if case_accepted {
                    accepted += 1;
                } else {
                    rejected += 1;
                    assert!(
                        rejected < 4096,
                        "{}: too many rejected cases ({} accepted)",
                        stringify!($name),
                        accepted,
                    );
                }
            }
        }
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn positive() -> impl Strategy<Value = f32> {
        (-1.0f32..1.0).prop_filter("positive", |v| *v > 0.0)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respected(x in -3.0f32..3.0, n in 1usize..10) {
            prop_assert!((-3.0..3.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn tuples_and_map_compose(v in (0.0f32..1.0, 0.0f32..1.0).prop_map(|(a, b)| a + b)) {
            prop_assert!((0.0..2.0).contains(&v));
        }

        #[test]
        fn filters_reject(x in positive()) {
            prop_assert!(x > 0.0);
        }

        #[test]
        fn assume_rejects(x in -1.0f32..1.0) {
            prop_assume!(x < 0.5);
            prop_assert!(x < 0.5);
        }

        #[test]
        fn collections_sized(v in prop::collection::vec(0u32..80, 3..7)) {
            prop_assert!(v.len() >= 3 && v.len() < 7);
            prop_assert!(v.iter().all(|&x| x < 80));
        }

        #[test]
        fn arrays_uniform(a in prop::array::uniform3(-1.0f32..1.0)) {
            for v in a {
                prop_assert!((-1.0..1.0).contains(&v));
            }
        }
    }
}
