//! Std-only stand-in for the subset of the `rand` crate API used by this
//! workspace (`StdRng::seed_from_u64`, `Rng::gen`, `Rng::gen_range`,
//! `Rng::gen_bool`).
//!
//! The build environment has no network access, so the workspace vendors the
//! few APIs it needs. The generator is SplitMix64-seeded xoshiro256++ — a
//! different stream than crates.io `rand`'s StdRng, but every consumer in
//! this workspace only requires a deterministic, well-mixed seeded stream,
//! not any particular one.

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The user-facing sampling interface.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of type `T` from its canonical distribution
    /// (uniform in `[0, 1)` for floats, uniform over all values for
    /// integers and `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (f64::sample_raw(self)) < p
    }
}

/// Marker for types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        f64::sample_raw(rng)
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as u32
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

trait SampleRaw {
    fn sample_raw<R: Rng + ?Sized>(rng: &mut R) -> f64;
}

impl SampleRaw for f64 {
    fn sample_raw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types uniformly samplable from a range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform sample in `[low, high)`.
    fn sample_between<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

impl SampleUniform for f32 {
    fn sample_between<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        // Sampled at f32 precision directly (24 bits) — casting a 53-bit
        // f64 sample down can round up to exactly 1.0 and break the
        // half-open contract.
        let u = f32::sample(rng);
        low + u * (high - low)
    }
}

impl SampleUniform for f64 {
    fn sample_between<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        let u = f64::sample_raw(rng);
        low + u * (high - low)
    }
}

macro_rules! uniform_int {
    ($t:ty) => {
        impl SampleUniform for $t {
            fn sample_between<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as i128 - low as i128) as u128;
                // Multiply-shift bounded sampling; bias is < 2^-64 per draw,
                // far below anything the procedural generators can observe.
                let r = rng.next_u64() as u128;
                low + ((r * span) >> 64) as $t
            }
        }
    };
}
uniform_int!(usize);
uniform_int!(u8);
uniform_int!(u16);
uniform_int!(u32);
uniform_int!(u64);
uniform_int!(i8);
uniform_int!(i16);
uniform_int!(i32);
uniform_int!(i64);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T: SampleUniform> {
    /// Draws one value from the range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_between(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "cannot sample empty range");
        // Treated as half-open; exact inclusivity of the top value is not
        // observable for the float ranges this workspace draws.
        T::sample_between(rng, low, high)
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn next_raw(&mut self) -> u64 {
            let result = (self.s[0].wrapping_add(self.s[3]))
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the xoshiro state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.next_raw()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f32 = rng.gen_range(-1.5..2.5);
            assert!((-1.5..2.5).contains(&v), "{v}");
            let u: f32 = rng.gen();
            assert!((0.0..1.0).contains(&u), "{u}");
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            let v: usize = rng.gen_range(0..8);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "{hits}");
    }
}
