//! A std-only counting global allocator for zero-allocation regression
//! tests.
//!
//! [`CountingAllocator`] wraps the [`System`] allocator and counts every
//! allocation (`alloc`, `alloc_zeroed`, and `realloc`, which moves or grows
//! a block) both globally and per thread. Install it as the test binary's
//! `#[global_allocator]` and assert that a steady-state code region
//! performs zero allocations:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: alloc_counter::CountingAllocator = alloc_counter::CountingAllocator;
//!
//! let span = alloc_counter::thread_allocations();
//! hot_path();
//! assert_eq!(alloc_counter::thread_allocations() - span, 0);
//! ```
//!
//! The per-thread counter ([`thread_allocations`]) is the one to assert on:
//! it is immune to allocations made concurrently by the test harness or by
//! worker-pool threads, so a single-threaded (serial-backend) hot path can
//! be measured exactly even in a multi-threaded test process. The global
//! counter ([`total_allocations`]) is available for coarse diagnostics.
//!
//! Deallocations are deliberately *not* counted: the regression target is
//! "the steady state performs no allocator round-trips", and every `dealloc`
//! is paired with a counted allocation.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide allocation count.
static TOTAL: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Calling thread's allocation count (const-initialized: reading it
    /// never allocates, so the counter can run inside the allocator).
    static THREAD: Cell<u64> = const { Cell::new(0) };
}

#[inline]
fn record() {
    TOTAL.fetch_add(1, Ordering::Relaxed);
    // `try_with` so allocations during TLS teardown (thread exit) cannot
    // panic inside the allocator; those late events still count globally.
    let _ = THREAD.try_with(|c| c.set(c.get() + 1));
}

/// Counting wrapper around the [`System`] allocator. Zero-sized; install as
/// `#[global_allocator]`.
pub struct CountingAllocator;

// SAFETY: delegates every operation to `System` unchanged; the counters are
// lock-free (atomic / thread-local Cell) and never allocate.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        record();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        record();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        record();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

/// Allocations made by the *calling thread* since it started (monotonic).
/// Subtract two readings to count a region's allocations.
pub fn thread_allocations() -> u64 {
    THREAD.try_with(Cell::get).unwrap_or(0)
}

/// Allocations made by the whole process since start (monotonic).
pub fn total_allocations() -> u64 {
    TOTAL.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    // NOTE: these unit tests do not install the allocator (a crate's own
    // test binary should not impose it on itself); the counting behaviour
    // is exercised end-to-end by `crates/render/tests/zero_alloc.rs`,
    // which sets `#[global_allocator]`.
    use super::*;

    #[test]
    fn counters_are_monotone() {
        let t0 = thread_allocations();
        let g0 = total_allocations();
        let v = vec![1u8, 2, 3];
        drop(v);
        assert!(thread_allocations() >= t0);
        assert!(total_allocations() >= g0);
    }
}
