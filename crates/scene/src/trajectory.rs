//! Ground-truth camera trajectories.
//!
//! Smooth low-frequency paths through the room with small correlated noise:
//! the frame-to-frame similarity (paper Observation 5, Fig. 5) and the
//! iteration-to-iteration workload similarity (Observation 6) both follow
//! from this smoothness, exactly as they do for handheld RGB-D recordings.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtgs_math::{Mat3, Quat, Se3, Vec3};

/// Shape of the camera path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TrajectoryStyle {
    /// Circular orbit around the room center (Replica-style smooth sweep).
    #[default]
    Orbit,
    /// Lissajous figure (TUM-style handheld wandering).
    Lissajous,
    /// Back-and-forth lateral scan (ScanNet-style room sweep).
    Scan,
}

/// Trajectory generation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrajectoryConfig {
    /// Number of frames.
    pub frames: usize,
    /// RNG seed for the noise process.
    pub seed: u64,
    /// Path shape.
    pub style: TrajectoryStyle,
    /// Fraction of the room half-extent the path sweeps (0..1).
    pub sweep: f32,
    /// Revolutions (or sweep periods) per frame. Per-frame motion is
    /// independent of sequence length, so short test sequences move at the
    /// same speed as long experiment runs.
    pub cycles_per_frame: f32,
    /// Standard deviation of the correlated positional noise (meters) —
    /// models handheld jitter.
    pub jitter: f32,
}

impl Default for TrajectoryConfig {
    fn default() -> Self {
        Self {
            frames: 30,
            seed: 11,
            style: TrajectoryStyle::Orbit,
            sweep: 0.45,
            cycles_per_frame: 0.05 / 30.0,
            jitter: 0.002,
        }
    }
}

/// Generates camera-to-world poses for every frame.
///
/// The camera always looks toward the room center (with a small smooth
/// offset), which keeps the scene in frame for any room-scale content.
///
/// # Panics
///
/// Panics if `config.frames == 0`.
pub fn generate_trajectory(config: &TrajectoryConfig, room_half_extent: Vec3) -> Vec<Se3> {
    assert!(config.frames > 0, "trajectory needs at least one frame");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let h = room_half_extent;
    let mut poses = Vec::with_capacity(config.frames);
    // First-order low-pass noise state (correlated jitter).
    let mut noise = Vec3::ZERO;

    for i in 0..config.frames {
        let t = i as f32 * config.cycles_per_frame;
        let phase = 2.0 * std::f32::consts::PI * t;
        let base = match config.style {
            TrajectoryStyle::Orbit => Vec3::new(
                config.sweep * h.x * phase.cos(),
                -0.2 * h.y + 0.1 * h.y * (2.0 * phase).sin(),
                config.sweep * h.z * phase.sin(),
            ),
            TrajectoryStyle::Lissajous => Vec3::new(
                config.sweep * h.x * phase.sin(),
                0.15 * h.y * (2.0 * phase + 0.4).sin(),
                config.sweep * h.z * (1.5 * phase).sin(),
            ),
            TrajectoryStyle::Scan => Vec3::new(
                config.sweep * h.x * (2.0 * (2.0 * t.fract() - 1.0).abs() - 1.0),
                -0.1 * h.y,
                0.5 * config.sweep * h.z * phase.cos(),
            ),
        };
        let step = Vec3::new(
            rng.gen_range(-1.0..1.0f32),
            rng.gen_range(-1.0..1.0f32),
            rng.gen_range(-1.0..1.0f32),
        ) * config.jitter;
        noise = noise * 0.8 + step;
        let position = base + noise;

        // Look at a slowly drifting target near the room center.
        let target = Vec3::new(
            0.25 * h.x * (0.7 * phase).sin(),
            0.0,
            0.25 * h.z * (0.9 * phase).cos(),
        );
        poses.push(look_at(position, target));
    }
    poses
}

/// Builds a camera-to-world pose located at `eye` looking toward `target`
/// (OpenCV convention: +z forward, +y down in camera frame).
pub fn look_at(eye: Vec3, target: Vec3) -> Se3 {
    let forward = (target - eye).normalized();
    let world_up = Vec3::new(0.0, -1.0, 0.0); // camera +y is down
    let mut right = forward.cross(world_up).normalized();
    if right.norm() < 1e-6 {
        right = Vec3::X;
    }
    let down = forward.cross(right).normalized();
    // Columns of the camera-to-world rotation are the camera axes in world.
    let rot = Mat3::from_rows(
        [right.x, down.x, forward.x],
        [right.y, down.y, forward.y],
        [right.z, down.z, forward.z],
    );
    Se3::new(Quat::from_rotation_matrix(&rot), eye)
}

/// Mean translational frame-to-frame step of a trajectory (meters); sanity
/// measure used by tests and the dataset profiles.
pub fn mean_step(poses: &[Se3]) -> f32 {
    if poses.len() < 2 {
        return 0.0;
    }
    let total: f32 = poses
        .windows(2)
        .map(|w| w[0].translation_distance(&w[1]))
        .sum();
    total / (poses.len() - 1) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn look_at_points_camera_at_target() {
        let pose = look_at(Vec3::new(0.0, 0.0, -2.0), Vec3::ZERO);
        // Camera-to-world: camera-frame forward (0,0,1) maps to world +z.
        let fwd_world = pose.transform_direction(Vec3::Z);
        assert!((fwd_world - Vec3::Z).max_abs() < 1e-4);
        // The target should project onto the optical axis: in camera frame
        // (w2c), the target sits at (0, 0, +distance).
        let target_cam = pose.inverse().transform_point(Vec3::ZERO);
        assert!(target_cam.xy().norm() < 1e-4);
        assert!(target_cam.z > 0.0);
    }

    #[test]
    fn trajectory_has_requested_length() {
        let cfg = TrajectoryConfig::default();
        let poses = generate_trajectory(&cfg, Vec3::new(3.0, 2.0, 3.0));
        assert_eq!(poses.len(), cfg.frames);
    }

    #[test]
    fn trajectory_is_smooth() {
        let cfg = TrajectoryConfig {
            frames: 60,
            ..Default::default()
        };
        let poses = generate_trajectory(&cfg, Vec3::new(3.0, 2.0, 3.0));
        let mean = mean_step(&poses);
        for w in poses.windows(2) {
            let step = w[0].translation_distance(&w[1]);
            assert!(
                step < 6.0 * mean + 1e-3,
                "step {step} too large vs mean {mean}"
            );
            let rot = w[0].rotation_distance(&w[1]);
            assert!(rot < 0.5, "rotation step {rot} rad too large");
        }
    }

    #[test]
    fn trajectory_is_deterministic() {
        let cfg = TrajectoryConfig::default();
        let room = Vec3::new(3.0, 2.0, 3.0);
        let a = generate_trajectory(&cfg, room);
        let b = generate_trajectory(&cfg, room);
        assert_eq!(a[5].translation, b[5].translation);
    }

    #[test]
    fn styles_produce_different_paths() {
        let room = Vec3::new(3.0, 2.0, 3.0);
        let orbit = generate_trajectory(
            &TrajectoryConfig {
                style: TrajectoryStyle::Orbit,
                ..Default::default()
            },
            room,
        );
        let scan = generate_trajectory(
            &TrajectoryConfig {
                style: TrajectoryStyle::Scan,
                ..Default::default()
            },
            room,
        );
        assert!((orbit[10].translation - scan[10].translation).norm() > 0.05);
    }

    #[test]
    fn camera_stays_inside_room() {
        let room = Vec3::new(3.0, 2.0, 3.0);
        for style in [
            TrajectoryStyle::Orbit,
            TrajectoryStyle::Lissajous,
            TrajectoryStyle::Scan,
        ] {
            let poses = generate_trajectory(
                &TrajectoryConfig {
                    style,
                    frames: 50,
                    ..Default::default()
                },
                room,
            );
            for p in &poses {
                assert!(p.translation.x.abs() < room.x);
                assert!(p.translation.y.abs() < room.y);
                assert!(p.translation.z.abs() < room.z);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_frames_panics() {
        let _ = generate_trajectory(
            &TrajectoryConfig {
                frames: 0,
                ..Default::default()
            },
            Vec3::splat(1.0),
        );
    }
}
