//! Dataset profiles and synthetic RGB-D sequence generation.
//!
//! Each profile mirrors one of the paper's four evaluation datasets
//! (Tab. 3) at 1/16 of the linear resolution so the CPU rasterizer can run
//! full SLAM experiments. The *relative* resolution ordering (TUM < Replica
//! < ScanNet < ScanNet++), trajectory style, scene density and depth
//! availability all follow the originals; see DESIGN.md for the
//! substitution rationale.

use crate::generator::{generate_indoor_scene, SceneConfig};
use crate::trajectory::{generate_trajectory, TrajectoryConfig, TrajectoryStyle};
use rtgs_math::Se3;
use rtgs_render::{render_frame, DepthImage, GaussianScene, Image, PinholeCamera};

/// One RGB(-D) observation.
#[derive(Debug, Clone)]
pub struct RgbdFrame {
    /// Frame index within the sequence.
    pub index: usize,
    /// RGB observation.
    pub color: Image,
    /// Depth observation; `None` for monocular profiles.
    pub depth: Option<DepthImage>,
}

/// A named dataset analog: resolution, trajectory style, scene density.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetProfile {
    /// Profile name (e.g. `"tum-analog"`).
    pub name: String,
    /// Image width.
    pub width: usize,
    /// Image height.
    pub height: usize,
    /// Horizontal field of view (radians).
    pub fov_x: f32,
    /// Default sequence length.
    pub frames: usize,
    /// Scene generator parameters.
    pub scene: SceneConfig,
    /// Trajectory parameters (`frames` is overridden per generation).
    pub trajectory: TrajectoryConfig,
    /// Whether depth observations are provided (RGB-D vs monocular).
    pub has_depth: bool,
}

impl DatasetProfile {
    /// TUM-RGBD analog (paper: 480×640) — handheld desk sequences.
    pub fn tum_analog() -> Self {
        Self {
            name: "tum-analog".into(),
            width: 40,
            height: 30,
            fov_x: 1.0,
            frames: 30,
            scene: SceneConfig {
                seed: 101,
                ..Default::default()
            },
            trajectory: TrajectoryConfig {
                style: TrajectoryStyle::Lissajous,
                seed: 201,
                jitter: 0.003,
                ..Default::default()
            },
            has_depth: true,
        }
    }

    /// Replica analog (paper: 680×1200) — smooth synthetic sweeps.
    pub fn replica_analog() -> Self {
        Self {
            name: "replica-analog".into(),
            width: 75,
            height: 42,
            fov_x: 1.2,
            frames: 30,
            scene: SceneConfig {
                seed: 102,
                object_clusters: 10,
                ..Default::default()
            },
            trajectory: TrajectoryConfig {
                style: TrajectoryStyle::Orbit,
                seed: 202,
                jitter: 0.002,
                ..Default::default()
            },
            has_depth: true,
        }
    }

    /// ScanNet analog (paper: 968×1296) — room-scale scan sweeps.
    pub fn scannet_analog() -> Self {
        Self {
            name: "scannet-analog".into(),
            width: 81,
            height: 60,
            fov_x: 1.2,
            frames: 30,
            scene: SceneConfig {
                seed: 103,
                wall_gaussians_per_surface: 150,
                ..Default::default()
            },
            trajectory: TrajectoryConfig {
                style: TrajectoryStyle::Scan,
                seed: 203,
                jitter: 0.004,
                ..Default::default()
            },
            has_depth: true,
        }
    }

    /// ScanNet++ analog (paper: 1160×1752) — high-resolution scans.
    pub fn scannetpp_analog() -> Self {
        Self {
            name: "scannetpp-analog".into(),
            width: 109,
            height: 72,
            fov_x: 1.25,
            frames: 30,
            scene: SceneConfig {
                seed: 104,
                wall_gaussians_per_surface: 160,
                object_clusters: 12,
                ..Default::default()
            },
            trajectory: TrajectoryConfig {
                style: TrajectoryStyle::Scan,
                seed: 204,
                jitter: 0.002,
                ..Default::default()
            },
            has_depth: true,
        }
    }

    /// All four dataset analogs in the paper's order.
    pub fn all_analogs() -> Vec<Self> {
        vec![
            Self::tum_analog(),
            Self::replica_analog(),
            Self::scannet_analog(),
            Self::scannetpp_analog(),
        ]
    }

    /// Scene names evaluated per dataset in the paper (Tab. 3).
    pub fn scene_names(&self) -> Vec<&'static str> {
        match self.name.as_str() {
            "tum-analog" => vec!["fr1/desk", "fr2/xyz", "fr3/office"],
            "replica-analog" => vec!["Rm0", "Rm1", "Rm2", "Of0", "Of1", "Of2", "Of3"],
            "scannet-analog" => vec![
                "scene0000",
                "scene0059",
                "scene0106",
                "scene0269",
                "scene0181",
                "scene0207",
            ],
            "scannetpp-analog" => vec!["s1", "s2"],
            _ => vec!["default"],
        }
    }

    /// A reduced copy for unit tests and doc examples: tiny resolution,
    /// sparse scene, short sequences.
    pub fn tiny(&self) -> Self {
        Self {
            name: format!("{}-tiny", self.name),
            width: 24,
            height: 18,
            frames: 4,
            scene: self.scene.scaled(0.08),
            ..self.clone()
        }
    }

    /// A mid-size copy for fast experiments (about a quarter of the
    /// Gaussians, half the resolution).
    pub fn small(&self) -> Self {
        Self {
            name: format!("{}-small", self.name),
            width: (self.width / 2).max(24),
            height: (self.height / 2).max(18),
            scene: self.scene.scaled(0.3),
            ..self.clone()
        }
    }

    /// Camera intrinsics for this profile.
    pub fn camera(&self) -> PinholeCamera {
        PinholeCamera::from_fov(self.width, self.height, self.fov_x)
    }
}

/// A fully generated synthetic sequence: hidden reference scene,
/// ground-truth trajectory and rendered RGB-D observations.
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    /// The profile this sequence was generated from.
    pub profile: DatasetProfile,
    /// Hidden reference world (never shown to the SLAM system).
    pub reference_scene: GaussianScene,
    /// Camera intrinsics.
    pub camera: PinholeCamera,
    /// Ground-truth camera-to-world poses.
    pub poses_c2w: Vec<Se3>,
    /// Observations rendered from the reference scene.
    pub frames: Vec<RgbdFrame>,
}

impl SyntheticDataset {
    /// Generates a sequence of `frames` observations from `profile`.
    ///
    /// Generation is deterministic in the profile's seeds. The scene-variant
    /// index (`0` for the canonical scene) shifts the seeds so each named
    /// scene of a dataset gets distinct content — see
    /// [`SyntheticDataset::generate_scene_variant`].
    pub fn generate(profile: DatasetProfile, frames: usize) -> Self {
        Self::generate_scene_variant(profile, frames, 0)
    }

    /// Generates the `variant`-th scene of a dataset (e.g. Replica Rm0 vs
    /// Of3): same profile, different content seed.
    pub fn generate_scene_variant(
        mut profile: DatasetProfile,
        frames: usize,
        variant: u64,
    ) -> Self {
        profile.scene.seed = profile.scene.seed.wrapping_add(variant.wrapping_mul(1009));
        profile.trajectory.seed = profile
            .trajectory
            .seed
            .wrapping_add(variant.wrapping_mul(2003));
        let reference_scene = generate_indoor_scene(&profile.scene);
        let camera = profile.camera();
        let mut traj_cfg = profile.trajectory;
        traj_cfg.frames = frames;
        let poses_c2w = generate_trajectory(&traj_cfg, profile.scene.room_half_extent);

        let mut out_frames = Vec::with_capacity(frames);
        for (index, pose) in poses_c2w.iter().enumerate() {
            let w2c = pose.inverse();
            let ctx = render_frame(&reference_scene, &w2c, &camera, None);
            // Normalize blended depth by opacity coverage so the synthetic
            // depth observation is a true surface depth (a raw alpha-blend
            // under-estimates depth wherever coverage < 1, which would
            // corrupt map seeding).
            let depth = profile.has_depth.then(|| {
                let mut d = ctx.output.depth.clone();
                for y in 0..camera.height {
                    for x in 0..camera.width {
                        let coverage = ctx.output.coverage(x, y);
                        if coverage > 0.2 {
                            let v = d.depth(x, y) / coverage;
                            d.set_depth(x, y, v);
                        } else {
                            d.set_depth(x, y, 0.0);
                        }
                    }
                }
                d
            });
            out_frames.push(RgbdFrame {
                index,
                color: ctx.output.image,
                depth,
            });
        }

        Self {
            profile,
            reference_scene,
            camera,
            poses_c2w,
            frames: out_frames,
        }
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// True when the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_have_increasing_resolution() {
        let all = DatasetProfile::all_analogs();
        let pixels: Vec<usize> = all.iter().map(|p| p.width * p.height).collect();
        for w in pixels.windows(2) {
            assert!(
                w[0] < w[1],
                "dataset resolutions should increase: {pixels:?}"
            );
        }
    }

    #[test]
    fn tiny_dataset_generates_quickly_and_consistently() {
        let ds = SyntheticDataset::generate(DatasetProfile::tum_analog().tiny(), 3);
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.poses_c2w.len(), 3);
        assert_eq!(ds.frames[0].color.width(), 24);
        assert!(ds.frames[0].depth.is_some());
    }

    #[test]
    fn frames_show_scene_content() {
        let ds = SyntheticDataset::generate(DatasetProfile::replica_analog().tiny(), 2);
        // The room encloses the camera, so a majority of pixels should be lit.
        let lit = ds.frames[0]
            .color
            .data()
            .iter()
            .filter(|c| c.norm() > 0.05)
            .count();
        assert!(
            lit > ds.frames[0].color.data().len() / 2,
            "only {lit} lit pixels"
        );
    }

    #[test]
    fn consecutive_frames_are_similar_but_not_identical() {
        let ds = SyntheticDataset::generate(DatasetProfile::replica_analog().tiny(), 3);
        let d01 = ds.frames[0].color.mean_abs_diff(&ds.frames[1].color);
        assert!(d01 > 0.0, "frames should differ");
        assert!(
            d01 < 0.2,
            "consecutive frames should be similar, diff {d01}"
        );
    }

    #[test]
    fn scene_variants_differ() {
        let p = DatasetProfile::replica_analog().tiny();
        let a = SyntheticDataset::generate_scene_variant(p.clone(), 1, 0);
        let b = SyntheticDataset::generate_scene_variant(p, 1, 1);
        assert!(a.frames[0].color.mean_abs_diff(&b.frames[0].color) > 0.01);
    }

    #[test]
    fn generation_is_deterministic() {
        let p = DatasetProfile::tum_analog().tiny();
        let a = SyntheticDataset::generate(p.clone(), 2);
        let b = SyntheticDataset::generate(p, 2);
        assert_eq!(a.frames[1].color.data(), b.frames[1].color.data());
    }

    #[test]
    fn scene_name_lists_match_paper() {
        assert_eq!(DatasetProfile::replica_analog().scene_names().len(), 7);
        assert_eq!(DatasetProfile::tum_analog().scene_names().len(), 3);
        assert_eq!(DatasetProfile::scannet_analog().scene_names().len(), 6);
        assert_eq!(DatasetProfile::scannetpp_analog().scene_names().len(), 2);
    }

    #[test]
    fn depth_maps_are_positive_where_covered() {
        let ds = SyntheticDataset::generate(DatasetProfile::tum_analog().tiny(), 1);
        let depth = ds.frames[0].depth.as_ref().unwrap();
        let positive = depth.data().iter().filter(|&&d| d > 0.0).count();
        assert!(positive > 0);
    }
}
