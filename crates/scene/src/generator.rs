//! Procedural indoor scene generation.
//!
//! Substitutes for the TUM/Replica/ScanNet recordings (see DESIGN.md): a
//! room made of flat, weakly textured wall Gaussians plus strongly textured
//! object clusters. This structure is what produces the paper's profiled
//! redundancies — the skewed gradient distribution of Observation 3 (most
//! gradient mass concentrates in the textured clusters and object contours)
//! and the per-pixel workload imbalance of Observation 6.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtgs_math::{Quat, Vec3};
use rtgs_render::{Gaussian3d, GaussianScene};

/// Parameters of the procedural indoor scene.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SceneConfig {
    /// RNG seed; every scene is fully reproducible.
    pub seed: u64,
    /// Half-extent of the room along x/y/z (meters).
    pub room_half_extent: Vec3,
    /// Number of Gaussians per wall surface (6 surfaces).
    pub wall_gaussians_per_surface: usize,
    /// Number of object clusters placed in the room interior.
    pub object_clusters: usize,
    /// Gaussians per object cluster.
    pub gaussians_per_cluster: usize,
    /// Color variance of object clusters relative to walls; larger values
    /// sharpen the gradient skew of Observation 3.
    pub texture_strength: f32,
}

impl Default for SceneConfig {
    fn default() -> Self {
        Self {
            seed: 7,
            room_half_extent: Vec3::new(3.0, 2.0, 3.0),
            wall_gaussians_per_surface: 120,
            object_clusters: 8,
            gaussians_per_cluster: 60,
            texture_strength: 0.35,
        }
    }
}

impl SceneConfig {
    /// Total number of Gaussians this configuration generates.
    pub fn total_gaussians(&self) -> usize {
        6 * self.wall_gaussians_per_surface + self.object_clusters * self.gaussians_per_cluster
    }

    /// Returns a scaled copy with roughly `factor` times the Gaussians.
    pub fn scaled(&self, factor: f32) -> Self {
        Self {
            wall_gaussians_per_surface: ((self.wall_gaussians_per_surface as f32 * factor)
                as usize)
                .max(8),
            object_clusters: ((self.object_clusters as f32 * factor.sqrt()) as usize).max(2),
            gaussians_per_cluster: ((self.gaussians_per_cluster as f32 * factor.sqrt()) as usize)
                .max(8),
            ..*self
        }
    }
}

/// Generates the reference indoor scene for a configuration.
///
/// Walls are large, flattened, weakly colored Gaussians; objects are small,
/// strongly colored clusters. Gaussian IDs are ordered walls-first.
pub fn generate_indoor_scene(config: &SceneConfig) -> GaussianScene {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let h = config.room_half_extent;
    let mut gaussians = Vec::with_capacity(config.total_gaussians());

    // Six wall surfaces: normal axis, fixed coordinate, base color.
    let surfaces: [(usize, f32, Vec3); 6] = [
        (0, -h.x, Vec3::new(0.75, 0.72, 0.68)), // left wall
        (0, h.x, Vec3::new(0.72, 0.74, 0.70)),  // right wall
        (1, -h.y, Vec3::new(0.55, 0.50, 0.45)), // floor
        (1, h.y, Vec3::new(0.85, 0.85, 0.85)),  // ceiling
        (2, -h.z, Vec3::new(0.70, 0.68, 0.72)), // back wall
        (2, h.z, Vec3::new(0.68, 0.70, 0.74)),  // front wall
    ];

    for &(axis, coord, base_color) in &surfaces {
        // Stratified placement: a jittered grid over the surface's two
        // in-plane axes. Pure uniform sampling leaves view-sized holes at
        // low densities (tiny/small profiles), making observations — and
        // therefore tracking — hostage to RNG luck; a jittered grid
        // guarantees enclosure at any density while staying irregular.
        let u_axis = (axis + 1) % 3;
        let v_axis = (axis + 2) % 3;
        let n = config.wall_gaussians_per_surface;
        let cols = (n as f32).sqrt().ceil() as usize;
        let rows = n.div_ceil(cols);
        let cell_v = 2.0 * h[v_axis] / rows as f32;
        for row in 0..rows {
            // A short final row stretches its cells across the full wall
            // width so no part of any surface is left uncovered.
            let in_row = cols.min(n - row * cols);
            let cell_u = 2.0 * h[u_axis] / in_row as f32;
            // In-plane footprint tied to the cell size so neighbors
            // overlap.
            let base_scale = 0.45 * cell_u.max(cell_v);
            for col in 0..in_row {
                let u = -h[u_axis] + (col as f32 + rng.gen_range(0.2..0.8)) * cell_u;
                let v = -h[v_axis] + (row as f32 + rng.gen_range(0.2..0.8)) * cell_v;
                let mut pos = Vec3::ZERO;
                pos[axis] = coord;
                pos[u_axis] = u;
                pos[v_axis] = v;
                // Flattened along the wall normal.
                let mut scale = Vec3::splat(base_scale * rng.gen_range(0.8..1.2));
                scale[axis] = rng.gen_range(0.01..0.03);
                let jitter = 0.04;
                let color = Vec3::new(
                    (base_color.x + rng.gen_range(-jitter..jitter)).clamp(0.0, 1.0),
                    (base_color.y + rng.gen_range(-jitter..jitter)).clamp(0.0, 1.0),
                    (base_color.z + rng.gen_range(-jitter..jitter)).clamp(0.0, 1.0),
                );
                gaussians.push(Gaussian3d::from_activated(
                    pos,
                    scale,
                    random_rotation(&mut rng, 0.2),
                    rng.gen_range(0.55..0.85),
                    color,
                ));
            }
        }
    }

    // Textured object clusters along the room periphery (floor band).
    // The camera trajectories sweep the central region of the room, so
    // clusters are kept outside it — walking a camera through an object
    // would fill the frame with a single near-plane splat.
    for _ in 0..config.object_clusters {
        let angle = rng.gen_range(0.0..std::f32::consts::TAU);
        let radial = rng.gen_range(0.60..0.82);
        let center = Vec3::new(
            radial * h.x * angle.cos(),
            rng.gen_range(-0.8 * h.y..-0.5 * h.y), // floor band
            radial * h.z * angle.sin(),
        );
        let cluster_radius = rng.gen_range(0.12..0.30);
        let base = Vec3::new(rng.gen(), rng.gen(), rng.gen());
        for _ in 0..config.gaussians_per_cluster {
            let offset = Vec3::new(
                rng.gen_range(-1.0..1.0f32),
                rng.gen_range(-1.0..1.0f32),
                rng.gen_range(-1.0..1.0f32),
            ) * cluster_radius;
            let t = config.texture_strength;
            let color = Vec3::new(
                (base.x + rng.gen_range(-t..t)).clamp(0.0, 1.0),
                (base.y + rng.gen_range(-t..t)).clamp(0.0, 1.0),
                (base.z + rng.gen_range(-t..t)).clamp(0.0, 1.0),
            );
            gaussians.push(Gaussian3d::from_activated(
                center + offset,
                Vec3::new(
                    rng.gen_range(0.02..0.09),
                    rng.gen_range(0.02..0.09),
                    rng.gen_range(0.02..0.09),
                ),
                random_rotation(&mut rng, std::f32::consts::PI),
                rng.gen_range(0.5..0.95),
                color,
            ));
        }
    }

    GaussianScene::from_gaussians(gaussians)
}

fn random_rotation(rng: &mut StdRng, max_angle: f32) -> Quat {
    let axis = Vec3::new(
        rng.gen_range(-1.0..1.0f32),
        rng.gen_range(-1.0..1.0f32),
        rng.gen_range(-1.0..1.0f32),
    );
    Quat::from_axis_angle(axis, rng.gen_range(-max_angle..max_angle))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scene_has_configured_size() {
        let cfg = SceneConfig::default();
        let scene = generate_indoor_scene(&cfg);
        assert_eq!(scene.len(), cfg.total_gaussians());
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = SceneConfig::default();
        let a = generate_indoor_scene(&cfg);
        let b = generate_indoor_scene(&cfg);
        assert_eq!(a.gaussians[0], b.gaussians[0]);
        assert_eq!(a.gaussians[a.len() - 1], b.gaussians[b.len() - 1]);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_indoor_scene(&SceneConfig::default());
        let b = generate_indoor_scene(&SceneConfig {
            seed: 99,
            ..Default::default()
        });
        assert_ne!(a.gaussians[0].position, b.gaussians[0].position);
    }

    #[test]
    fn walls_enclose_interior_objects() {
        let cfg = SceneConfig::default();
        let scene = generate_indoor_scene(&cfg);
        let h = cfg.room_half_extent;
        let n_wall = 6 * cfg.wall_gaussians_per_surface;
        for g in &scene.gaussians[n_wall..] {
            assert!(g.position.x.abs() <= h.x);
            assert!(g.position.y.abs() <= h.y + 0.5); // cluster offsets may poke out a little
            assert!(g.position.z.abs() <= h.z);
        }
    }

    #[test]
    fn objects_are_more_textured_than_walls() {
        let cfg = SceneConfig::default();
        let scene = generate_indoor_scene(&cfg);
        let n_wall = 6 * cfg.wall_gaussians_per_surface;
        let variance = |gs: &[Gaussian3d]| {
            let mean = gs.iter().fold(Vec3::ZERO, |a, g| a + g.color) / gs.len() as f32;
            gs.iter()
                .map(|g| (g.color - mean).norm_squared())
                .sum::<f32>()
                / gs.len() as f32
        };
        let wall_var = variance(&scene.gaussians[..n_wall]);
        let obj_var = variance(&scene.gaussians[n_wall..]);
        assert!(
            obj_var > 2.0 * wall_var,
            "objects should be visibly more textured: {obj_var} vs {wall_var}"
        );
    }

    #[test]
    fn scaled_config_changes_size() {
        let cfg = SceneConfig::default();
        let small = cfg.scaled(0.25);
        assert!(small.total_gaussians() < cfg.total_gaussians());
        assert!(small.total_gaussians() > 0);
    }

    #[test]
    fn all_gaussians_have_valid_parameters() {
        let scene = generate_indoor_scene(&SceneConfig::default());
        for g in &scene.gaussians {
            assert!(g.position.is_finite());
            assert!(g.scale().is_finite());
            let o = g.opacity_activated();
            assert!((0.0..=1.0).contains(&o));
            assert!(g.color.x >= 0.0 && g.color.x <= 1.0);
        }
    }
}
