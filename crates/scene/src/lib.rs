//! Procedural indoor scenes, camera trajectories and dataset analogs.
//!
//! This crate substitutes for the paper's four recorded datasets
//! (TUM-RGBD, Replica, ScanNet, ScanNet++): a hidden reference Gaussian
//! scene is generated procedurally, a smooth camera trajectory is laid
//! through it, and ground-truth RGB-D observations are rendered with the
//! `rtgs-render` rasterizer. The SLAM system under test only ever sees the
//! observations — never the reference scene or trajectory.
//!
//! # Example
//!
//! ```
//! use rtgs_scene::{DatasetProfile, SyntheticDataset};
//!
//! let profile = DatasetProfile::tum_analog().tiny();
//! let dataset = SyntheticDataset::generate(profile, 3);
//! assert_eq!(dataset.len(), 3);
//! assert!(dataset.frames[0].depth.is_some()); // TUM analog is RGB-D
//! ```

mod dataset;
mod generator;
mod trajectory;

pub use dataset::{DatasetProfile, RgbdFrame, SyntheticDataset};
pub use generator::{generate_indoor_scene, SceneConfig};
pub use trajectory::{generate_trajectory, look_at, mean_step, TrajectoryConfig, TrajectoryStyle};
