//! Property-based tests for the math primitives.

use proptest::prelude::*;
use rtgs_math::{Mat3, Quat, Se3, Sym2, Sym3, Vec3};

fn small_f32() -> impl Strategy<Value = f32> {
    -2.0f32..2.0f32
}

fn vec3() -> impl Strategy<Value = Vec3> {
    (small_f32(), small_f32(), small_f32()).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn unit_quat() -> impl Strategy<Value = Quat> {
    (vec3(), -3.0f32..3.0f32)
        .prop_filter("non-degenerate axis", |(a, _)| a.norm() > 1e-3)
        .prop_map(|(axis, angle)| Quat::from_axis_angle(axis, angle))
}

proptest! {
    #[test]
    fn rotation_preserves_norm(q in unit_quat(), v in vec3()) {
        let rotated = q.rotate(v);
        prop_assert!((rotated.norm() - v.norm()).abs() < 1e-3);
    }

    #[test]
    fn rotation_preserves_dot(q in unit_quat(), a in vec3(), b in vec3()) {
        let da = q.rotate(a).dot(q.rotate(b));
        prop_assert!((da - a.dot(b)).abs() < 1e-2);
    }

    #[test]
    fn quat_matrix_roundtrip(q in unit_quat()) {
        let q2 = Quat::from_rotation_matrix(&q.to_rotation_matrix());
        prop_assert!(q.angle_to(q2) < 1e-3, "q = {q:?}, angle = {}", q.angle_to(q2));
    }

    #[test]
    fn se3_inverse_composition_is_identity(q in unit_quat(), t in vec3()) {
        let pose = Se3::new(q, t);
        let id = pose.compose(&pose.inverse());
        prop_assert!(id.translation.max_abs() < 1e-4);
        prop_assert!(id.rotation.angle_to(Quat::IDENTITY) < 1e-3);
    }

    #[test]
    fn se3_exp_log_roundtrip(
        rho in prop::array::uniform3(-1.0f32..1.0),
        phi in prop::array::uniform3(-1.0f32..1.0),
    ) {
        let xi = [rho[0], rho[1], rho[2], phi[0], phi[1], phi[2]];
        let back = Se3::exp(xi).log();
        for i in 0..6 {
            prop_assert!((xi[i] - back[i]).abs() < 1e-3,
                "component {} differs: {} vs {}", i, xi[i], back[i]);
        }
    }

    #[test]
    fn se3_transform_roundtrip(q in unit_quat(), t in vec3(), p in vec3()) {
        let pose = Se3::new(q, t);
        let back = pose.inverse().transform_point(pose.transform_point(p));
        prop_assert!((back - p).max_abs() < 1e-3);
    }

    #[test]
    fn sym2_inverse_is_inverse(xx in 0.5f32..3.0, yy in 0.5f32..3.0, xy in -0.4f32..0.4) {
        let s = Sym2::new(xx, xy, yy);
        prop_assume!(s.is_positive_definite());
        let inv = s.inverse().unwrap();
        let prod = s.to_mat2() * inv.to_mat2();
        prop_assert!((prod.m[0][0] - 1.0).abs() < 1e-3);
        prop_assert!((prod.m[1][1] - 1.0).abs() < 1e-3);
        prop_assert!(prod.m[0][1].abs() < 1e-3);
    }

    #[test]
    fn sym2_eigenvalues_bound_quadratic_form(
        xx in 0.5f32..3.0, yy in 0.5f32..3.0, xy in -0.4f32..0.4,
        vx in -1.0f32..1.0, vy in -1.0f32..1.0,
    ) {
        let s = Sym2::new(xx, xy, yy);
        let v = rtgs_math::Vec2::new(vx, vy);
        prop_assume!(v.norm() > 1e-3);
        let (l1, l2) = s.eigenvalues();
        let rayleigh = s.quadratic_form(v) / v.norm_squared();
        prop_assert!(rayleigh <= l1 + 1e-3);
        prop_assert!(rayleigh >= l2 - 1e-3);
    }

    #[test]
    fn sym3_congruence_preserves_psd(q in unit_quat(), d in prop::array::uniform3(0.1f32..2.0)) {
        // Build a PSD covariance from rotation * diag(d)^2
        let r = q.to_rotation_matrix();
        let m = r * Mat3::from_diagonal(Vec3::new(d[0], d[1], d[2]));
        let cov = Sym3::from_m_mt(&m);
        let a = Mat3::from_rows([1.0, 0.2, -0.1], [0.0, 0.9, 0.3], [0.1, 0.0, 1.1]);
        let proj = cov.congruence(&a);
        for v in [Vec3::X, Vec3::Y, Vec3::Z, Vec3::new(0.5, -0.5, 0.7)] {
            prop_assert!(v.dot(proj.mul_vec(v)) >= -1e-4);
        }
    }

    #[test]
    fn mat3_inverse_roundtrip_for_well_conditioned(
        q in unit_quat(), d in prop::array::uniform3(0.5f32..2.0)
    ) {
        let m = q.to_rotation_matrix() * Mat3::from_diagonal(Vec3::new(d[0], d[1], d[2]));
        let inv = m.inverse().unwrap();
        let id = m * inv;
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 1.0 } else { 0.0 };
                prop_assert!((id.m[i][j] - expect).abs() < 1e-3);
            }
        }
    }
}
