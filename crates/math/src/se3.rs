//! SE(3) rigid-body transforms with exponential/logarithm maps.
//!
//! Camera poses are optimized on the SE(3) manifold: tracking computes a
//! gradient in the 6-dof tangent space (translation first, then rotation)
//! and retracts with [`Se3::retract`]. Exp/log run in `f64` internally for
//! stability near zero angle.

use crate::{Mat3, Quat, Vec3};

/// A rigid-body transform `x ↦ R x + t` (camera-to-world by convention).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Se3 {
    /// Rotation component.
    pub rotation: Quat,
    /// Translation component.
    pub translation: Vec3,
}

impl Se3 {
    /// The identity transform.
    pub const IDENTITY: Self = Self {
        rotation: Quat::IDENTITY,
        translation: Vec3::ZERO,
    };

    /// Creates a transform from rotation and translation.
    #[inline]
    pub fn new(rotation: Quat, translation: Vec3) -> Self {
        Self {
            rotation: rotation.normalized(),
            translation,
        }
    }

    /// A pure translation.
    #[inline]
    pub fn from_translation(translation: Vec3) -> Self {
        Self::new(Quat::IDENTITY, translation)
    }

    /// A pure rotation.
    #[inline]
    pub fn from_rotation(rotation: Quat) -> Self {
        Self::new(rotation, Vec3::ZERO)
    }

    /// Applies the transform to a point.
    #[inline]
    pub fn transform_point(&self, p: Vec3) -> Vec3 {
        self.rotation.rotate(p) + self.translation
    }

    /// Applies only the rotation (for directions).
    #[inline]
    pub fn transform_direction(&self, d: Vec3) -> Vec3 {
        self.rotation.rotate(d)
    }

    /// The inverse transform.
    pub fn inverse(&self) -> Self {
        let rot_inv = self.rotation.conjugate().normalized();
        Self {
            rotation: rot_inv,
            translation: -rot_inv.rotate(self.translation),
        }
    }

    /// Composition: `(self ∘ rhs)(x) = self(rhs(x))`.
    pub fn compose(&self, rhs: &Se3) -> Self {
        Self {
            rotation: (self.rotation * rhs.rotation).normalized(),
            translation: self.rotation.rotate(rhs.translation) + self.translation,
        }
    }

    /// The rotation as a matrix.
    #[inline]
    pub fn rotation_matrix(&self) -> Mat3 {
        self.rotation.to_rotation_matrix()
    }

    /// Exponential map from a twist `ξ = (ρ, φ)` — translation part `ρ`
    /// first, rotation part `φ` (axis-angle) second.
    pub fn exp(xi: [f32; 6]) -> Self {
        let rho = Vec3::new(xi[0], xi[1], xi[2]);
        let phi = Vec3::new(xi[3], xi[4], xi[5]);
        let theta = phi.norm() as f64;
        let rotation = Quat::from_axis_angle(phi, phi.norm());

        // V matrix: t = V * rho
        let v = if theta < 1e-6 {
            Mat3::IDENTITY + Mat3::skew(phi).scale(0.5)
        } else {
            let t = theta;
            let a = ((1.0 - t.cos()) / (t * t)) as f32;
            let b = ((t - t.sin()) / (t * t * t)) as f32;
            let skew = Mat3::skew(phi);
            Mat3::IDENTITY + skew.scale(a) + (skew * skew).scale(b)
        };
        Self {
            rotation,
            translation: v.mul_vec(rho),
        }
    }

    /// Logarithm map to a twist `(ρ, φ)`; inverse of [`Se3::exp`].
    pub fn log(&self) -> [f32; 6] {
        let q = self.rotation.normalized();
        let w = (q.w as f64).clamp(-1.0, 1.0);
        let vec_norm = ((q.x as f64).powi(2) + (q.y as f64).powi(2) + (q.z as f64).powi(2)).sqrt();
        let theta = 2.0 * vec_norm.atan2(w);
        let phi = if vec_norm < 1e-12 {
            Vec3::ZERO
        } else {
            Vec3::new(q.x, q.y, q.z) * ((theta / vec_norm) as f32)
        };

        let v_inv = if theta.abs() < 1e-6 {
            Mat3::IDENTITY - Mat3::skew(phi).scale(0.5)
        } else {
            let t = theta;
            let half = t / 2.0;
            let cot_term = (1.0 / (t * t) - half.cos() / (2.0 * t * half.sin())) as f32;
            let skew = Mat3::skew(phi);
            Mat3::IDENTITY - skew.scale(0.5) + (skew * skew).scale(cot_term)
        };
        let rho = v_inv.mul_vec(self.translation);
        [rho.x, rho.y, rho.z, phi.x, phi.y, phi.z]
    }

    /// Left-multiplicative retraction: `exp(δ) ∘ self`.
    ///
    /// This is the update used by tracking: the pose gradient lives in the
    /// tangent space at the current estimate.
    pub fn retract(&self, delta: [f32; 6]) -> Self {
        Se3::exp(delta).compose(self)
    }

    /// Translation distance to another pose.
    #[inline]
    pub fn translation_distance(&self, other: &Se3) -> f32 {
        (self.translation - other.translation).norm()
    }

    /// Rotation angle (radians) to another pose.
    #[inline]
    pub fn rotation_distance(&self, other: &Se3) -> f32 {
        self.rotation.angle_to(other.rotation)
    }
}

impl Default for Se3 {
    fn default() -> Self {
        Self::IDENTITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f32::consts::FRAC_PI_3;

    fn approx_pose(a: &Se3, b: &Se3, tol: f32) {
        assert!(
            a.translation_distance(b) < tol,
            "translation {} vs {}",
            a.translation,
            b.translation
        );
        assert!(a.rotation_distance(b) < tol, "rotation distance too large");
    }

    #[test]
    fn identity_transforms_nothing() {
        let p = Vec3::new(1.0, -2.0, 3.0);
        assert_eq!(Se3::IDENTITY.transform_point(p), p);
    }

    #[test]
    fn inverse_undoes_transform() {
        let t = Se3::new(
            Quat::from_axis_angle(Vec3::new(0.1, 0.9, -0.3), 0.8),
            Vec3::new(1.0, 2.0, -0.5),
        );
        let p = Vec3::new(0.4, -0.7, 2.0);
        let back = t.inverse().transform_point(t.transform_point(p));
        assert!((back - p).max_abs() < 1e-5);
    }

    #[test]
    fn compose_associates_with_application() {
        let a = Se3::new(
            Quat::from_axis_angle(Vec3::Z, 0.5),
            Vec3::new(1.0, 0.0, 0.0),
        );
        let b = Se3::new(
            Quat::from_axis_angle(Vec3::X, -0.3),
            Vec3::new(0.0, 2.0, 0.0),
        );
        let p = Vec3::new(0.3, 0.4, 0.5);
        let via_compose = a.compose(&b).transform_point(p);
        let via_sequence = a.transform_point(b.transform_point(p));
        assert!((via_compose - via_sequence).max_abs() < 1e-5);
    }

    #[test]
    fn exp_log_roundtrip() {
        let xi = [0.3f32, -0.2, 0.5, 0.1, 0.4, -0.25];
        let pose = Se3::exp(xi);
        let back = pose.log();
        for i in 0..6 {
            assert!(
                (xi[i] - back[i]).abs() < 1e-4,
                "component {i}: {} vs {}",
                xi[i],
                back[i]
            );
        }
    }

    #[test]
    fn exp_log_roundtrip_small_angle() {
        let xi = [1e-8f32, 2e-8, -1e-8, 1e-9, -2e-9, 1e-9];
        let back = Se3::exp(xi).log();
        for (a, b) in xi.iter().zip(back.iter()) {
            assert!((a - b).abs() < 1e-7);
        }
    }

    #[test]
    fn exp_of_zero_is_identity() {
        approx_pose(&Se3::exp([0.0; 6]), &Se3::IDENTITY, 1e-7);
    }

    #[test]
    fn exp_pure_rotation() {
        let pose = Se3::exp([0.0, 0.0, 0.0, 0.0, 0.0, FRAC_PI_3]);
        assert!(pose.translation.max_abs() < 1e-6);
        assert!((pose.rotation.angle_to(Quat::IDENTITY) - FRAC_PI_3).abs() < 1e-5);
    }

    #[test]
    fn exp_pure_translation() {
        let pose = Se3::exp([1.0, 2.0, 3.0, 0.0, 0.0, 0.0]);
        approx_pose(
            &pose,
            &Se3::from_translation(Vec3::new(1.0, 2.0, 3.0)),
            1e-6,
        );
    }

    #[test]
    fn retract_zero_is_noop() {
        let pose = Se3::new(
            Quat::from_axis_angle(Vec3::Y, 1.0),
            Vec3::new(3.0, 1.0, 2.0),
        );
        approx_pose(&pose.retract([0.0; 6]), &pose, 1e-6);
    }

    #[test]
    fn retract_small_translation_moves_pose() {
        let pose = Se3::IDENTITY;
        let moved = pose.retract([0.01, 0.0, 0.0, 0.0, 0.0, 0.0]);
        assert!((moved.translation.x - 0.01).abs() < 1e-6);
    }

    #[test]
    fn distances_are_symmetric() {
        let a = Se3::new(
            Quat::from_axis_angle(Vec3::X, 0.2),
            Vec3::new(1.0, 0.0, 0.0),
        );
        let b = Se3::new(
            Quat::from_axis_angle(Vec3::X, 0.5),
            Vec3::new(0.0, 1.0, 0.0),
        );
        assert!((a.translation_distance(&b) - b.translation_distance(&a)).abs() < 1e-6);
        assert!((a.rotation_distance(&b) - b.rotation_distance(&a)).abs() < 1e-6);
    }
}
