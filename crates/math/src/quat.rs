//! Unit quaternions for Gaussian orientations.

use crate::{Mat3, Vec3};
use std::ops::Mul;

/// A quaternion `w + xi + yj + zk`.
///
/// Gaussian orientations store *unnormalized* quaternions as free
/// optimization parameters; [`Quat::to_rotation_matrix`] normalizes
/// internally, matching the reference 3DGS implementation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quat {
    /// Scalar part.
    pub w: f32,
    /// i component.
    pub x: f32,
    /// j component.
    pub y: f32,
    /// k component.
    pub z: f32,
}

impl Quat {
    /// The identity rotation.
    pub const IDENTITY: Self = Self {
        w: 1.0,
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Creates a quaternion from components.
    #[inline]
    pub const fn new(w: f32, x: f32, y: f32, z: f32) -> Self {
        Self { w, x, y, z }
    }

    /// Creates a rotation of `angle` radians about the (not necessarily
    /// unit) `axis`. A zero axis yields the identity.
    pub fn from_axis_angle(axis: Vec3, angle: f32) -> Self {
        let n = axis.norm();
        if n < 1e-12 {
            return Self::IDENTITY;
        }
        let half = 0.5 * angle;
        let s = half.sin() / n;
        Self::new(half.cos(), axis.x * s, axis.y * s, axis.z * s)
    }

    /// Quaternion norm.
    #[inline]
    pub fn norm(self) -> f32 {
        (self.w * self.w + self.x * self.x + self.y * self.y + self.z * self.z).sqrt()
    }

    /// Returns the unit quaternion with the same orientation; the identity
    /// when the norm is (numerically) zero.
    pub fn normalized(self) -> Self {
        let n = self.norm();
        if n < 1e-12 {
            return Self::IDENTITY;
        }
        Self::new(self.w / n, self.x / n, self.y / n, self.z / n)
    }

    /// The conjugate (inverse for unit quaternions).
    #[inline]
    pub fn conjugate(self) -> Self {
        Self::new(self.w, -self.x, -self.y, -self.z)
    }

    /// Converts to a rotation matrix, normalizing first.
    pub fn to_rotation_matrix(self) -> Mat3 {
        let q = self.normalized();
        let (w, x, y, z) = (q.w, q.x, q.y, q.z);
        Mat3::from_rows(
            [
                1.0 - 2.0 * (y * y + z * z),
                2.0 * (x * y - w * z),
                2.0 * (x * z + w * y),
            ],
            [
                2.0 * (x * y + w * z),
                1.0 - 2.0 * (x * x + z * z),
                2.0 * (y * z - w * x),
            ],
            [
                2.0 * (x * z - w * y),
                2.0 * (y * z + w * x),
                1.0 - 2.0 * (x * x + y * y),
            ],
        )
    }

    /// Rotates a vector (normalizes first).
    pub fn rotate(self, v: Vec3) -> Vec3 {
        self.to_rotation_matrix().mul_vec(v)
    }

    /// Builds a quaternion from a rotation matrix (Shepperd's method).
    ///
    /// The input is assumed to be a proper rotation; small orthogonality
    /// errors are absorbed by the final normalization.
    pub fn from_rotation_matrix(m: &Mat3) -> Self {
        let t = m.trace();
        let q = if t > 0.0 {
            let s = (t + 1.0).sqrt() * 2.0;
            Self::new(
                0.25 * s,
                (m.m[2][1] - m.m[1][2]) / s,
                (m.m[0][2] - m.m[2][0]) / s,
                (m.m[1][0] - m.m[0][1]) / s,
            )
        } else if m.m[0][0] > m.m[1][1] && m.m[0][0] > m.m[2][2] {
            let s = (1.0 + m.m[0][0] - m.m[1][1] - m.m[2][2]).sqrt() * 2.0;
            Self::new(
                (m.m[2][1] - m.m[1][2]) / s,
                0.25 * s,
                (m.m[0][1] + m.m[1][0]) / s,
                (m.m[0][2] + m.m[2][0]) / s,
            )
        } else if m.m[1][1] > m.m[2][2] {
            let s = (1.0 + m.m[1][1] - m.m[0][0] - m.m[2][2]).sqrt() * 2.0;
            Self::new(
                (m.m[0][2] - m.m[2][0]) / s,
                (m.m[0][1] + m.m[1][0]) / s,
                0.25 * s,
                (m.m[1][2] + m.m[2][1]) / s,
            )
        } else {
            let s = (1.0 + m.m[2][2] - m.m[0][0] - m.m[1][1]).sqrt() * 2.0;
            Self::new(
                (m.m[1][0] - m.m[0][1]) / s,
                (m.m[0][2] + m.m[2][0]) / s,
                (m.m[1][2] + m.m[2][1]) / s,
                0.25 * s,
            )
        };
        q.normalized()
    }

    /// Angular distance in radians to another rotation.
    ///
    /// Computed as `2·atan2(‖vec(r)‖, |w(r)|)` of the relative rotation
    /// `r = a⁻¹·b`, which stays well-conditioned for small angles (the
    /// naive `2·acos(|a·b|)` amplifies f32 rounding to ~1e-3 rad near
    /// identity).
    pub fn angle_to(self, other: Quat) -> f32 {
        let r = self.normalized().conjugate() * other.normalized();
        let vec_norm = (r.x * r.x + r.y * r.y + r.z * r.z).sqrt();
        2.0 * vec_norm.atan2(r.w.abs())
    }
}

impl Default for Quat {
    fn default() -> Self {
        Self::IDENTITY
    }
}

impl Mul for Quat {
    type Output = Self;
    /// Hamilton product; composes rotations (`a * b` rotates by `b` then `a`).
    fn mul(self, r: Self) -> Self {
        Self::new(
            self.w * r.w - self.x * r.x - self.y * r.y - self.z * r.z,
            self.w * r.x + self.x * r.w + self.y * r.z - self.z * r.y,
            self.w * r.y - self.x * r.z + self.y * r.w + self.z * r.x,
            self.w * r.z + self.x * r.y - self.y * r.x + self.z * r.w,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f32::consts::{FRAC_PI_2, PI};

    #[test]
    fn identity_rotation() {
        let v = Vec3::new(1.0, 2.0, 3.0);
        assert!((Quat::IDENTITY.rotate(v) - v).max_abs() < 1e-6);
    }

    #[test]
    fn quarter_turn_about_z() {
        let q = Quat::from_axis_angle(Vec3::Z, FRAC_PI_2);
        let v = q.rotate(Vec3::X);
        assert!((v - Vec3::Y).max_abs() < 1e-6);
    }

    #[test]
    fn rotation_matrix_is_orthonormal() {
        let q = Quat::from_axis_angle(Vec3::new(1.0, 2.0, -0.5), 1.2);
        let r = q.to_rotation_matrix();
        let rt_r = r.transpose() * r;
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((rt_r.m[i][j] - expect).abs() < 1e-5);
            }
        }
        assert!((r.det() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn matrix_roundtrip() {
        let q = Quat::from_axis_angle(Vec3::new(0.3, -0.8, 0.5), 2.4).normalized();
        let q2 = Quat::from_rotation_matrix(&q.to_rotation_matrix());
        // q and -q represent the same rotation
        assert!(q.angle_to(q2) < 1e-4);
    }

    #[test]
    fn composition_matches_matrix_product() {
        let a = Quat::from_axis_angle(Vec3::X, 0.7);
        let b = Quat::from_axis_angle(Vec3::Y, -1.1);
        let lhs = (a * b).to_rotation_matrix();
        let rhs = a.to_rotation_matrix() * b.to_rotation_matrix();
        for i in 0..3 {
            for j in 0..3 {
                assert!((lhs.m[i][j] - rhs.m[i][j]).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn conjugate_inverts() {
        let q = Quat::from_axis_angle(Vec3::new(1.0, 1.0, 0.0), 0.9);
        let v = Vec3::new(0.2, -0.4, 1.3);
        let back = q.conjugate().rotate(q.rotate(v));
        assert!((back - v).max_abs() < 1e-5);
    }

    #[test]
    fn angle_to_self_is_zero() {
        let q = Quat::from_axis_angle(Vec3::Z, 0.4);
        assert!(q.angle_to(q) < 1e-4);
        assert!((q.angle_to(Quat::IDENTITY) - 0.4).abs() < 1e-4);
    }

    #[test]
    fn zero_axis_gives_identity() {
        assert_eq!(Quat::from_axis_angle(Vec3::ZERO, 1.0), Quat::IDENTITY);
    }

    #[test]
    fn full_turn_is_identity_rotation() {
        let q = Quat::from_axis_angle(Vec3::Y, 2.0 * PI);
        let v = Vec3::new(1.0, 0.5, -2.0);
        assert!((q.rotate(v) - v).max_abs() < 1e-5);
    }

    #[test]
    fn unnormalized_quat_rotates_like_normalized() {
        let q = Quat::new(2.0, 0.0, 0.0, 2.0); // unnormalized 90° about z
        let v = q.rotate(Vec3::X);
        assert!((v - Vec3::Y).max_abs() < 1e-5);
    }
}
