//! Symmetric matrices stored in compact (upper-triangular) form.
//!
//! The 3DGS pipeline manipulates covariance matrices, which are symmetric by
//! construction; storing only the unique entries halves memory traffic — the
//! same layout the paper's CUDA kernels (and our hardware trace model) use.

use crate::{Mat2, Mat3, Vec2, Vec3};
use std::ops::{Add, Mul};

/// A symmetric 2×2 matrix `[[xx, xy], [xy, yy]]` (2D covariance).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Sym2 {
    /// Entry (0,0).
    pub xx: f32,
    /// Entry (0,1) == (1,0).
    pub xy: f32,
    /// Entry (1,1).
    pub yy: f32,
}

impl Sym2 {
    /// The identity matrix.
    pub const IDENTITY: Self = Self {
        xx: 1.0,
        xy: 0.0,
        yy: 1.0,
    };

    /// Creates a symmetric 2×2 matrix from its unique entries.
    #[inline]
    pub const fn new(xx: f32, xy: f32, yy: f32) -> Self {
        Self { xx, xy, yy }
    }

    /// Determinant.
    #[inline]
    pub fn det(&self) -> f32 {
        self.xx * self.yy - self.xy * self.xy
    }

    /// Inverse, or `None` when the determinant magnitude is below `1e-12`.
    pub fn inverse(&self) -> Option<Self> {
        let d = self.det();
        if d.abs() < 1e-12 {
            return None;
        }
        let inv = 1.0 / d;
        Some(Self::new(self.yy * inv, -self.xy * inv, self.xx * inv))
    }

    /// Evaluates the quadratic form `v^T M v`.
    #[inline]
    pub fn quadratic_form(&self, v: Vec2) -> f32 {
        self.xx * v.x * v.x + 2.0 * self.xy * v.x * v.y + self.yy * v.y * v.y
    }

    /// Matrix–vector product.
    #[inline]
    pub fn mul_vec(&self, v: Vec2) -> Vec2 {
        Vec2::new(self.xx * v.x + self.xy * v.y, self.xy * v.x + self.yy * v.y)
    }

    /// Eigenvalues in descending order. Always real for symmetric matrices.
    pub fn eigenvalues(&self) -> (f32, f32) {
        let mean = 0.5 * (self.xx + self.yy);
        let diff = 0.5 * (self.xx - self.yy);
        let r = (diff * diff + self.xy * self.xy).sqrt();
        (mean + r, mean - r)
    }

    /// True when the matrix is positive definite (both eigenvalues > 0).
    pub fn is_positive_definite(&self) -> bool {
        self.xx > 0.0 && self.det() > 0.0
    }

    /// Expands to a full [`Mat2`].
    #[inline]
    pub fn to_mat2(self) -> Mat2 {
        Mat2::new(self.xx, self.xy, self.xy, self.yy)
    }

    /// Trace (sum of diagonal entries).
    #[inline]
    pub fn trace(&self) -> f32 {
        self.xx + self.yy
    }

    /// Frobenius norm, counting the off-diagonal entry twice.
    pub fn frobenius_norm(&self) -> f32 {
        (self.xx * self.xx + 2.0 * self.xy * self.xy + self.yy * self.yy).sqrt()
    }
}

impl Add for Sym2 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self::new(self.xx + rhs.xx, self.xy + rhs.xy, self.yy + rhs.yy)
    }
}

impl Mul<f32> for Sym2 {
    type Output = Self;
    #[inline]
    fn mul(self, s: f32) -> Self {
        Self::new(self.xx * s, self.xy * s, self.yy * s)
    }
}

/// A symmetric 3×3 matrix (3D covariance), upper-triangular storage.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Sym3 {
    /// Entry (0,0).
    pub xx: f32,
    /// Entry (0,1).
    pub xy: f32,
    /// Entry (0,2).
    pub xz: f32,
    /// Entry (1,1).
    pub yy: f32,
    /// Entry (1,2).
    pub yz: f32,
    /// Entry (2,2).
    pub zz: f32,
}

impl Sym3 {
    /// The identity matrix.
    pub const IDENTITY: Self = Self {
        xx: 1.0,
        xy: 0.0,
        xz: 0.0,
        yy: 1.0,
        yz: 0.0,
        zz: 1.0,
    };

    /// Creates a symmetric matrix from the six unique entries.
    #[inline]
    pub const fn new(xx: f32, xy: f32, xz: f32, yy: f32, yz: f32, zz: f32) -> Self {
        Self {
            xx,
            xy,
            xz,
            yy,
            yz,
            zz,
        }
    }

    /// Builds the symmetric matrix `M M^T` from an arbitrary 3×3 matrix `M`.
    ///
    /// This is the canonical construction of a 3D Gaussian covariance
    /// `Σ = R S S^T R^T` where `M = R S` (rotation times scale).
    pub fn from_m_mt(m: &Mat3) -> Self {
        let r0 = m.row(0);
        let r1 = m.row(1);
        let r2 = m.row(2);
        Self::new(
            r0.dot(r0),
            r0.dot(r1),
            r0.dot(r2),
            r1.dot(r1),
            r1.dot(r2),
            r2.dot(r2),
        )
    }

    /// Expands to a full [`Mat3`].
    pub fn to_mat3(self) -> Mat3 {
        Mat3::from_rows(
            [self.xx, self.xy, self.xz],
            [self.xy, self.yy, self.yz],
            [self.xz, self.yz, self.zz],
        )
    }

    /// Projects with a (possibly non-symmetric) matrix: `A Σ A^T`.
    ///
    /// Used by EWA splatting to push a 3D covariance through the affine
    /// approximation of the perspective projection.
    pub fn congruence(&self, a: &Mat3) -> Sym3 {
        let full = *a * self.to_mat3() * a.transpose();
        Sym3::new(
            full.m[0][0],
            full.m[0][1],
            full.m[0][2],
            full.m[1][1],
            full.m[1][2],
            full.m[2][2],
        )
    }

    /// Drops the third row/column, yielding the image-plane 2D covariance.
    #[inline]
    pub fn top_left_2x2(&self) -> Sym2 {
        Sym2::new(self.xx, self.xy, self.yy)
    }

    /// Matrix–vector product.
    #[inline]
    pub fn mul_vec(&self, v: Vec3) -> Vec3 {
        Vec3::new(
            self.xx * v.x + self.xy * v.y + self.xz * v.z,
            self.xy * v.x + self.yy * v.y + self.yz * v.z,
            self.xz * v.x + self.yz * v.y + self.zz * v.z,
        )
    }

    /// Trace (sum of diagonal entries).
    #[inline]
    pub fn trace(&self) -> f32 {
        self.xx + self.yy + self.zz
    }

    /// Frobenius norm counting off-diagonal entries twice.
    pub fn frobenius_norm(&self) -> f32 {
        (self.xx * self.xx
            + self.yy * self.yy
            + self.zz * self.zz
            + 2.0 * (self.xy * self.xy + self.xz * self.xz + self.yz * self.yz))
            .sqrt()
    }
}

impl Add for Sym3 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self::new(
            self.xx + rhs.xx,
            self.xy + rhs.xy,
            self.xz + rhs.xz,
            self.yy + rhs.yy,
            self.yz + rhs.yz,
            self.zz + rhs.zz,
        )
    }
}

impl Mul<f32> for Sym3 {
    type Output = Self;
    #[inline]
    fn mul(self, s: f32) -> Self {
        Self::new(
            self.xx * s,
            self.xy * s,
            self.xz * s,
            self.yy * s,
            self.yz * s,
            self.zz * s,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sym2_inverse_roundtrip() {
        let s = Sym2::new(2.0, 0.5, 1.5);
        let inv = s.inverse().unwrap();
        let prod = s.to_mat2() * inv.to_mat2();
        assert!((prod.m[0][0] - 1.0).abs() < 1e-5);
        assert!(prod.m[0][1].abs() < 1e-5);
    }

    #[test]
    fn sym2_quadratic_form_matches_explicit() {
        let s = Sym2::new(2.0, -0.3, 1.1);
        let v = Vec2::new(0.7, -1.2);
        let explicit = v.dot(s.to_mat2().mul_vec(v));
        assert!((s.quadratic_form(v) - explicit).abs() < 1e-5);
    }

    #[test]
    fn sym2_eigenvalues_of_diagonal() {
        let (l1, l2) = Sym2::new(3.0, 0.0, 1.0).eigenvalues();
        assert_eq!((l1, l2), (3.0, 1.0));
    }

    #[test]
    fn sym2_positive_definiteness() {
        assert!(Sym2::new(1.0, 0.0, 1.0).is_positive_definite());
        assert!(!Sym2::new(1.0, 2.0, 1.0).is_positive_definite());
        assert!(!Sym2::new(-1.0, 0.0, 1.0).is_positive_definite());
    }

    #[test]
    fn sym3_from_m_mt_is_psd() {
        let m = Mat3::from_rows([1.0, 0.2, 0.0], [0.0, 0.5, 0.1], [0.3, 0.0, 2.0]);
        let s = Sym3::from_m_mt(&m);
        // quadratic form of M M^T is |M^T v|^2 >= 0
        for v in [Vec3::X, Vec3::Y, Vec3::new(0.3, -0.7, 0.2)] {
            assert!(v.dot(s.mul_vec(v)) >= 0.0);
        }
    }

    #[test]
    fn sym3_congruence_matches_dense() {
        let s = Sym3::new(2.0, 0.1, -0.2, 1.5, 0.3, 0.8);
        let a = Mat3::from_rows([0.9, 0.1, 0.0], [-0.2, 1.1, 0.3], [0.0, 0.2, 0.7]);
        let dense = a * s.to_mat3() * a.transpose();
        let compact = s.congruence(&a).to_mat3();
        for i in 0..3 {
            for j in 0..3 {
                assert!((dense.m[i][j] - compact.m[i][j]).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn sym3_top_left() {
        let s = Sym3::new(1.0, 2.0, 3.0, 4.0, 5.0, 6.0);
        assert_eq!(s.top_left_2x2(), Sym2::new(1.0, 2.0, 4.0));
    }

    #[test]
    fn traces() {
        assert_eq!(Sym2::IDENTITY.trace(), 2.0);
        assert_eq!(Sym3::IDENTITY.trace(), 3.0);
    }

    #[test]
    fn frobenius_counts_off_diagonals_twice() {
        let s = Sym2::new(0.0, 1.0, 0.0);
        assert!((s.frobenius_norm() - 2.0f32.sqrt()).abs() < 1e-6);
    }
}
