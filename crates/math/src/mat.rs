//! Small dense square matrices (row-major).

use crate::{Vec2, Vec3};
use std::ops::{Add, Mul, Sub};

/// A 2×2 `f32` matrix, row-major.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Mat2 {
    /// Rows of the matrix.
    pub m: [[f32; 2]; 2],
}

impl Mat2 {
    /// The identity matrix.
    pub const IDENTITY: Self = Self {
        m: [[1.0, 0.0], [0.0, 1.0]],
    };

    /// Creates a matrix from row-major entries.
    #[inline]
    pub const fn new(m00: f32, m01: f32, m10: f32, m11: f32) -> Self {
        Self {
            m: [[m00, m01], [m10, m11]],
        }
    }

    /// Determinant.
    #[inline]
    pub fn det(&self) -> f32 {
        self.m[0][0] * self.m[1][1] - self.m[0][1] * self.m[1][0]
    }

    /// Matrix inverse, or `None` when the determinant magnitude is below
    /// `1e-12`.
    pub fn inverse(&self) -> Option<Self> {
        let d = self.det();
        if d.abs() < 1e-12 {
            return None;
        }
        let inv = 1.0 / d;
        Some(Self::new(
            self.m[1][1] * inv,
            -self.m[0][1] * inv,
            -self.m[1][0] * inv,
            self.m[0][0] * inv,
        ))
    }

    /// Transpose.
    #[inline]
    pub fn transpose(&self) -> Self {
        Self::new(self.m[0][0], self.m[1][0], self.m[0][1], self.m[1][1])
    }

    /// Matrix–vector product.
    #[inline]
    pub fn mul_vec(&self, v: Vec2) -> Vec2 {
        Vec2::new(
            self.m[0][0] * v.x + self.m[0][1] * v.y,
            self.m[1][0] * v.x + self.m[1][1] * v.y,
        )
    }
}

impl Mul for Mat2 {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        let mut out = [[0.0f32; 2]; 2];
        for (i, row) in out.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                *cell = (0..2).map(|k| self.m[i][k] * rhs.m[k][j]).sum();
            }
        }
        Self { m: out }
    }
}

/// A 3×3 `f32` matrix, row-major. Used for rotations and covariance
/// transforms.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Mat3 {
    /// Rows of the matrix.
    pub m: [[f32; 3]; 3],
}

impl Mat3 {
    /// The identity matrix.
    pub const IDENTITY: Self = Self {
        m: [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]],
    };

    /// Creates a matrix from rows.
    #[inline]
    pub const fn from_rows(r0: [f32; 3], r1: [f32; 3], r2: [f32; 3]) -> Self {
        Self { m: [r0, r1, r2] }
    }

    /// Creates a diagonal matrix.
    #[inline]
    pub fn from_diagonal(d: Vec3) -> Self {
        Self::from_rows([d.x, 0.0, 0.0], [0.0, d.y, 0.0], [0.0, 0.0, d.z])
    }

    /// Returns row `i` as a vector.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 3`.
    #[inline]
    pub fn row(&self, i: usize) -> Vec3 {
        Vec3::new(self.m[i][0], self.m[i][1], self.m[i][2])
    }

    /// Returns column `j` as a vector.
    ///
    /// # Panics
    ///
    /// Panics if `j >= 3`.
    #[inline]
    pub fn col(&self, j: usize) -> Vec3 {
        Vec3::new(self.m[0][j], self.m[1][j], self.m[2][j])
    }

    /// Transpose.
    pub fn transpose(&self) -> Self {
        let mut out = [[0.0f32; 3]; 3];
        for (i, row) in out.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                *cell = self.m[j][i];
            }
        }
        Self { m: out }
    }

    /// Determinant.
    pub fn det(&self) -> f32 {
        let m = &self.m;
        m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
            - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
            + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
    }

    /// Matrix inverse via the adjugate, or `None` when the determinant
    /// magnitude is below `1e-18`.
    pub fn inverse(&self) -> Option<Self> {
        let d = self.det();
        if d.abs() < 1e-18 {
            return None;
        }
        let m = &self.m;
        let inv = 1.0 / d;
        let c = |a: f32, b: f32, cc: f32, dd: f32| (a * dd - b * cc) * inv;
        Some(Self::from_rows(
            [
                c(m[1][1], m[1][2], m[2][1], m[2][2]),
                c(m[0][2], m[0][1], m[2][2], m[2][1]),
                c(m[0][1], m[0][2], m[1][1], m[1][2]),
            ],
            [
                c(m[1][2], m[1][0], m[2][2], m[2][0]),
                c(m[0][0], m[0][2], m[2][0], m[2][2]),
                c(m[0][2], m[0][0], m[1][2], m[1][0]),
            ],
            [
                c(m[1][0], m[1][1], m[2][0], m[2][1]),
                c(m[0][1], m[0][0], m[2][1], m[2][0]),
                c(m[0][0], m[0][1], m[1][0], m[1][1]),
            ],
        ))
    }

    /// Matrix–vector product.
    #[inline]
    pub fn mul_vec(&self, v: Vec3) -> Vec3 {
        Vec3::new(self.row(0).dot(v), self.row(1).dot(v), self.row(2).dot(v))
    }

    /// Outer product `a * b^T`.
    pub fn outer(a: Vec3, b: Vec3) -> Self {
        Self::from_rows(
            [a.x * b.x, a.x * b.y, a.x * b.z],
            [a.y * b.x, a.y * b.y, a.y * b.z],
            [a.z * b.x, a.z * b.y, a.z * b.z],
        )
    }

    /// Skew-symmetric cross-product matrix `[v]_×` with `[v]_× w = v × w`.
    pub fn skew(v: Vec3) -> Self {
        Self::from_rows([0.0, -v.z, v.y], [v.z, 0.0, -v.x], [-v.y, v.x, 0.0])
    }

    /// Sum of diagonal entries.
    #[inline]
    pub fn trace(&self) -> f32 {
        self.m[0][0] + self.m[1][1] + self.m[2][2]
    }

    /// Scales every entry.
    pub fn scale(&self, s: f32) -> Self {
        let mut out = *self;
        for row in &mut out.m {
            for v in row {
                *v *= s;
            }
        }
        out
    }
}

impl Mul for Mat3 {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        let mut out = [[0.0f32; 3]; 3];
        for (i, row) in out.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                *cell = (0..3).map(|k| self.m[i][k] * rhs.m[k][j]).sum();
            }
        }
        Self { m: out }
    }
}

impl Add for Mat3 {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        let mut out = self;
        for i in 0..3 {
            for j in 0..3 {
                out.m[i][j] += rhs.m[i][j];
            }
        }
        out
    }
}

impl Sub for Mat3 {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        let mut out = self;
        for i in 0..3 {
            for j in 0..3 {
                out.m[i][j] -= rhs.m[i][j];
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f32, b: f32) -> bool {
        (a - b).abs() < 1e-5
    }

    #[test]
    fn mat2_inverse_roundtrip() {
        let m = Mat2::new(2.0, 1.0, 1.0, 3.0);
        let inv = m.inverse().unwrap();
        let id = m * inv;
        assert!(approx(id.m[0][0], 1.0) && approx(id.m[1][1], 1.0));
        assert!(approx(id.m[0][1], 0.0) && approx(id.m[1][0], 0.0));
    }

    #[test]
    fn mat2_singular_returns_none() {
        assert!(Mat2::new(1.0, 2.0, 2.0, 4.0).inverse().is_none());
    }

    #[test]
    fn mat3_inverse_roundtrip() {
        let m = Mat3::from_rows([2.0, 0.5, 0.1], [0.0, 1.5, -0.2], [0.3, 0.0, 1.0]);
        let inv = m.inverse().unwrap();
        let id = m * inv;
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!(
                    approx(id.m[i][j], expect),
                    "entry ({i},{j}) = {}",
                    id.m[i][j]
                );
            }
        }
    }

    #[test]
    fn mat3_det_of_identity() {
        assert_eq!(Mat3::IDENTITY.det(), 1.0);
        assert!(Mat3::from_diagonal(Vec3::splat(2.0)).det() - 8.0 < 1e-6);
    }

    #[test]
    fn mat3_transpose_involution() {
        let m = Mat3::from_rows([1.0, 2.0, 3.0], [4.0, 5.0, 6.0], [7.0, 8.0, 9.0]);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().m[0][1], 4.0);
    }

    #[test]
    fn skew_matches_cross_product() {
        let v = Vec3::new(1.0, -2.0, 0.5);
        let w = Vec3::new(0.3, 0.7, -1.1);
        let lhs = Mat3::skew(v).mul_vec(w);
        let rhs = v.cross(w);
        assert!((lhs - rhs).max_abs() < 1e-6);
    }

    #[test]
    fn outer_product_entries() {
        let m = Mat3::outer(Vec3::new(1.0, 2.0, 3.0), Vec3::new(4.0, 5.0, 6.0));
        assert_eq!(m.m[1][2], 12.0);
        assert_eq!(m.m[2][0], 12.0);
        assert_eq!(m.m[0][0], 4.0);
    }

    #[test]
    fn mat3_row_col_access() {
        let m = Mat3::from_rows([1.0, 2.0, 3.0], [4.0, 5.0, 6.0], [7.0, 8.0, 9.0]);
        assert_eq!(m.row(1), Vec3::new(4.0, 5.0, 6.0));
        assert_eq!(m.col(2), Vec3::new(3.0, 6.0, 9.0));
        assert_eq!(m.trace(), 15.0);
    }

    #[test]
    fn mat3_mul_vec_identity() {
        let v = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(Mat3::IDENTITY.mul_vec(v), v);
    }
}
