//! Linear-algebra and Lie-group primitives used throughout the RTGS
//! reproduction.
//!
//! The crate is deliberately small and dependency-free: rendering math runs
//! in `f32` (mirroring GPU practice in the paper's CUDA kernels), while pose
//! math ([`Se3`]) keeps `f32` storage but performs exp/log in `f64` for
//! stability.
//!
//! # Example
//!
//! ```
//! use rtgs_math::{Vec3, Se3};
//!
//! let pose = Se3::from_translation(Vec3::new(1.0, 0.0, 0.0));
//! let p = pose.transform_point(Vec3::ZERO);
//! assert_eq!(p, Vec3::new(1.0, 0.0, 0.0));
//! ```

mod mat;
mod quat;
mod se3;
mod sym;
mod vec;

pub use mat::{Mat2, Mat3};
pub use quat::Quat;
pub use se3::Se3;
pub use sym::{Sym2, Sym3};
pub use vec::{Vec2, Vec3, Vec4};

/// Clamps `x` into `[lo, hi]`.
///
/// Unlike [`f32::clamp`] this does not panic when `lo > hi`; the lower bound
/// wins, which is the behaviour wanted when bounds are derived from noisy
/// data.
#[inline]
pub fn clamp(x: f32, lo: f32, hi: f32) -> f32 {
    if x < lo {
        lo
    } else if x > hi {
        hi
    } else {
        x
    }
}

/// Numerically safe sigmoid, used for opacity activations.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Inverse of [`sigmoid`]; input is clamped away from {0, 1}.
#[inline]
pub fn logit(p: f32) -> f32 {
    let p = clamp(p, 1e-6, 1.0 - 1e-6);
    (p / (1.0 - p)).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamp_orders_bounds() {
        assert_eq!(clamp(5.0, 0.0, 1.0), 1.0);
        assert_eq!(clamp(-5.0, 0.0, 1.0), 0.0);
        assert_eq!(clamp(0.5, 0.0, 1.0), 0.5);
    }

    #[test]
    fn sigmoid_matches_definition() {
        for &x in &[-10.0f32, -1.0, 0.0, 1.0, 10.0] {
            let expect = 1.0 / (1.0 + (-x).exp());
            assert!((sigmoid(x) - expect).abs() < 1e-6);
        }
    }

    #[test]
    fn logit_inverts_sigmoid() {
        for &p in &[0.01f32, 0.2, 0.5, 0.8, 0.99] {
            assert!((sigmoid(logit(p)) - p).abs() < 1e-5);
        }
    }

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        assert!(sigmoid(-100.0) >= 0.0);
        assert!(sigmoid(100.0) <= 1.0);
        assert!(sigmoid(-100.0).is_finite());
    }
}
