//! Fixed-size `f32` vectors.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Index, IndexMut, Mul, MulAssign, Neg, Sub, SubAssign};

macro_rules! impl_vec_common {
    ($name:ident, $($f:ident),+) => {
        impl $name {
            /// The zero vector.
            pub const ZERO: Self = Self { $($f: 0.0),+ };

            /// Creates a vector from components.
            #[inline]
            pub const fn new($($f: f32),+) -> Self {
                Self { $($f),+ }
            }

            /// Creates a vector with every component set to `v`.
            #[inline]
            pub const fn splat(v: f32) -> Self {
                Self { $($f: v),+ }
            }

            /// Dot product.
            #[inline]
            pub fn dot(self, rhs: Self) -> f32 {
                0.0 $(+ self.$f * rhs.$f)+
            }

            /// Euclidean norm.
            #[inline]
            pub fn norm(self) -> f32 {
                self.dot(self).sqrt()
            }

            /// Squared Euclidean norm (cheaper than [`Self::norm`]).
            #[inline]
            pub fn norm_squared(self) -> f32 {
                self.dot(self)
            }

            /// Returns the unit vector in the same direction, or zero when
            /// the norm is (numerically) zero.
            #[inline]
            pub fn normalized(self) -> Self {
                let n = self.norm();
                if n > 1e-12 { self / n } else { Self::ZERO }
            }

            /// Component-wise product (Hadamard product).
            #[inline]
            pub fn hadamard(self, rhs: Self) -> Self {
                Self { $($f: self.$f * rhs.$f),+ }
            }

            /// Component-wise minimum.
            #[inline]
            pub fn min(self, rhs: Self) -> Self {
                Self { $($f: self.$f.min(rhs.$f)),+ }
            }

            /// Component-wise maximum.
            #[inline]
            pub fn max(self, rhs: Self) -> Self {
                Self { $($f: self.$f.max(rhs.$f)),+ }
            }

            /// Largest absolute component, useful for convergence tests.
            #[inline]
            pub fn max_abs(self) -> f32 {
                let mut m = 0.0f32;
                $( m = m.max(self.$f.abs()); )+
                m
            }

            /// True when every component is finite.
            #[inline]
            pub fn is_finite(self) -> bool {
                true $(&& self.$f.is_finite())+
            }

            /// Linear interpolation: `self * (1 - t) + rhs * t`.
            #[inline]
            pub fn lerp(self, rhs: Self, t: f32) -> Self {
                self * (1.0 - t) + rhs * t
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self { $($f: self.$f + rhs.$f),+ }
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                $(self.$f += rhs.$f;)+
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self { $($f: self.$f - rhs.$f),+ }
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                $(self.$f -= rhs.$f;)+
            }
        }

        impl Mul<f32> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f32) -> Self {
                Self { $($f: self.$f * rhs),+ }
            }
        }

        impl MulAssign<f32> for $name {
            #[inline]
            fn mul_assign(&mut self, rhs: f32) {
                $(self.$f *= rhs;)+
            }
        }

        impl Mul<$name> for f32 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                rhs * self
            }
        }

        impl Div<f32> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f32) -> Self {
                Self { $($f: self.$f / rhs),+ }
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self { $($f: -self.$f),+ }
            }
        }

        impl Default for $name {
            #[inline]
            fn default() -> Self {
                Self::ZERO
            }
        }
    };
}

/// A 2-component `f32` vector (pixel coordinates, 2D means).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Vec2 {
    /// X component.
    pub x: f32,
    /// Y component.
    pub y: f32,
}

impl_vec_common!(Vec2, x, y);

impl Vec2 {
    /// 2D "cross product" (z component of the 3D cross product).
    #[inline]
    pub fn perp_dot(self, rhs: Self) -> f32 {
        self.x * rhs.y - self.y * rhs.x
    }
}

impl fmt::Display for Vec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// A 3-component `f32` vector (3D positions, RGB colors).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Vec3 {
    /// X component.
    pub x: f32,
    /// Y component.
    pub y: f32,
    /// Z component.
    pub z: f32,
}

impl_vec_common!(Vec3, x, y, z);

impl Vec3 {
    /// Unit vector along +X.
    pub const X: Self = Self::new(1.0, 0.0, 0.0);
    /// Unit vector along +Y.
    pub const Y: Self = Self::new(0.0, 1.0, 0.0);
    /// Unit vector along +Z.
    pub const Z: Self = Self::new(0.0, 0.0, 1.0);

    /// Cross product.
    #[inline]
    pub fn cross(self, rhs: Self) -> Self {
        Self::new(
            self.y * rhs.z - self.z * rhs.y,
            self.z * rhs.x - self.x * rhs.z,
            self.x * rhs.y - self.y * rhs.x,
        )
    }

    /// Truncates to the XY components.
    #[inline]
    pub fn xy(self) -> Vec2 {
        Vec2::new(self.x, self.y)
    }
}

impl Index<usize> for Vec3 {
    type Output = f32;
    #[inline]
    fn index(&self, i: usize) -> &f32 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index {i} out of range"),
        }
    }
}

impl IndexMut<usize> for Vec3 {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f32 {
        match i {
            0 => &mut self.x,
            1 => &mut self.y,
            2 => &mut self.z,
            _ => panic!("Vec3 index {i} out of range"),
        }
    }
}

impl fmt::Display for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

impl From<[f32; 3]> for Vec3 {
    #[inline]
    fn from(a: [f32; 3]) -> Self {
        Self::new(a[0], a[1], a[2])
    }
}

impl From<Vec3> for [f32; 3] {
    #[inline]
    fn from(v: Vec3) -> Self {
        [v.x, v.y, v.z]
    }
}

/// A 4-component `f32` vector (homogeneous coordinates, RGBA).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Vec4 {
    /// X component.
    pub x: f32,
    /// Y component.
    pub y: f32,
    /// Z component.
    pub z: f32,
    /// W component.
    pub w: f32,
}

impl_vec_common!(Vec4, x, y, z, w);

impl Vec4 {
    /// Truncates to the XYZ components.
    #[inline]
    pub fn xyz(self) -> Vec3 {
        Vec3::new(self.x, self.y, self.z)
    }
}

impl fmt::Display for Vec4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {}, {})", self.x, self.y, self.z, self.w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec3_arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a / 2.0, Vec3::new(0.5, 1.0, 1.5));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn vec3_dot_and_cross() {
        let a = Vec3::X;
        let b = Vec3::Y;
        assert_eq!(a.dot(b), 0.0);
        assert_eq!(a.cross(b), Vec3::Z);
        assert_eq!(b.cross(a), -Vec3::Z);
    }

    #[test]
    fn cross_is_orthogonal() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-2.0, 0.5, 4.0);
        let c = a.cross(b);
        assert!(c.dot(a).abs() < 1e-5);
        assert!(c.dot(b).abs() < 1e-5);
    }

    #[test]
    fn normalized_has_unit_length() {
        let v = Vec3::new(3.0, 4.0, 0.0).normalized();
        assert!((v.norm() - 1.0).abs() < 1e-6);
        assert_eq!(Vec3::ZERO.normalized(), Vec3::ZERO);
    }

    #[test]
    fn lerp_endpoints() {
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(2.0, 4.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec2::new(1.0, 2.0));
    }

    #[test]
    fn vec3_indexing() {
        let mut v = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(v[0], 1.0);
        v[2] = 9.0;
        assert_eq!(v.z, 9.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn vec3_index_out_of_range_panics() {
        let v = Vec3::ZERO;
        let _ = v[3];
    }

    #[test]
    fn min_max_componentwise() {
        let a = Vec2::new(1.0, 5.0);
        let b = Vec2::new(3.0, 2.0);
        assert_eq!(a.min(b), Vec2::new(1.0, 2.0));
        assert_eq!(a.max(b), Vec2::new(3.0, 5.0));
    }

    #[test]
    fn vec4_xyz_truncation() {
        let v = Vec4::new(1.0, 2.0, 3.0, 4.0);
        assert_eq!(v.xyz(), Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn perp_dot_sign() {
        assert!(Vec2::new(1.0, 0.0).perp_dot(Vec2::new(0.0, 1.0)) > 0.0);
        assert!(Vec2::new(0.0, 1.0).perp_dot(Vec2::new(1.0, 0.0)) < 0.0);
    }

    #[test]
    fn conversion_roundtrip() {
        let v = Vec3::from([1.0, 2.0, 3.0]);
        let a: [f32; 3] = v.into();
        assert_eq!(a, [1.0, 2.0, 3.0]);
    }
}
