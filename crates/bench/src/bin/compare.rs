//! Perf-regression comparator for the CI `perf-smoke` gate.
//!
//! Compares a freshly produced `BENCH_RESULTS.json` against the committed
//! baseline and fails (exit code 1) when any benchmark *group* regresses
//! beyond the allowed percentage. A group's metric is the **sum of the
//! min_ns of its benchmarks present in both files** — min-of-N is the
//! standard low-noise estimator for CPU microbenches (scheduler preemption
//! and cache pollution only ever add time), and summing makes the gate
//! robust to individual noisy microbenches while still catching a real
//! regression anywhere in the group. Baselines written before `min_ns`
//! existed fall back to `median_ns` per entry.
//!
//! On top of the percentage threshold, an **absolute noise floor** guards
//! tiny groups: a group fails only when its regression exceeds the
//! percentage *and* grows by more than `--noise-floor` nanoseconds in
//! absolute terms. A 3ns→4ns microbench group is +33% but pure jitter;
//! the floor keeps it from flaking the gate.
//!
//! ```text
//! compare <baseline.json> <current.json> [--max-regression <percent>]
//!         [--noise-floor <ns>] [--json <path>]
//! ```
//!
//! Benchmarks present only in the current file (new benches) or only in the
//! baseline (removed benches) are reported but never fail the gate; refresh
//! the committed baseline to adopt them (see CONTRIBUTING.md).
//!
//! `--json <path>` additionally writes the per-group verdict table as
//! machine-readable JSON (groups, deltas, statuses, thresholds, overall
//! verdict); CI uploads it as an artifact alongside `BENCH_RESULTS.json` so
//! perf history can be mined without re-parsing the human table.
//!
//! The parser is a minimal, std-only reader for the flat
//! `[{"group": .., "bench": .., "median_ns": .., "min_ns": ..}, ..]` schema
//! the criterion shim writes (string and numeric values only).

use std::collections::BTreeMap;
use std::process::ExitCode;

/// Default failure threshold: a group regressing more than this fraction
/// versus the baseline fails the gate.
const DEFAULT_MAX_REGRESSION: f64 = 0.25;

/// Default absolute noise floor in nanoseconds: a group must regress by more
/// than this much wall time (on top of the percentage threshold) to fail.
/// 100µs is far above timer/scheduler jitter but far below any regression
/// the paper-level benchmarks could meaningfully suffer.
const DEFAULT_NOISE_FLOOR_NS: f64 = 100_000.0;

/// One benchmark entry from a results file.
#[derive(Debug, Clone, PartialEq)]
struct Entry {
    group: String,
    bench: String,
    median_ns: f64,
    /// Minimum-of-samples, absent in baselines written before the shim
    /// recorded it.
    min_ns: Option<f64>,
}

impl Entry {
    /// The value this entry contributes to its group's gated sum:
    /// min-of-N when available, median otherwise (old baselines).
    fn metric_ns(&self) -> f64 {
        self.min_ns.unwrap_or(self.median_ns)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let usage = "usage: compare <baseline.json> <current.json> [--max-regression <pct>] \
                 [--noise-floor <ns>] [--json <path>]";
    let mut paths = Vec::new();
    let mut max_regression = DEFAULT_MAX_REGRESSION;
    let mut noise_floor_ns = DEFAULT_NOISE_FLOOR_NS;
    let mut json_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => {
                i += 1;
                let Some(p) = args.get(i) else {
                    eprintln!("--json requires an output path");
                    return ExitCode::from(2);
                };
                json_path = Some(p.clone());
            }
            "--max-regression" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|s| s.parse::<f64>().ok()) else {
                    eprintln!("--max-regression requires a numeric percentage");
                    return ExitCode::from(2);
                };
                max_regression = v / 100.0;
            }
            "--noise-floor" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|s| s.parse::<f64>().ok()) else {
                    eprintln!("--noise-floor requires a numeric nanosecond value");
                    return ExitCode::from(2);
                };
                noise_floor_ns = v;
            }
            "--help" | "-h" => {
                eprintln!("{usage}");
                return ExitCode::SUCCESS;
            }
            p => paths.push(p.to_string()),
        }
        i += 1;
    }
    if paths.len() != 2 {
        eprintln!("{usage}");
        return ExitCode::from(2);
    }

    let read = |path: &str| -> Result<Vec<Entry>, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        parse_entries(&text).map_err(|e| format!("cannot parse {path}: {e}"))
    };
    let baseline = match read(&paths[0]) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let current = match read(&paths[1]) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };

    let report = compare(&baseline, &current, max_regression, noise_floor_ns);
    print!("{}", report.text);
    if let Some(path) = json_path {
        let body = report.render_json(max_regression, noise_floor_ns);
        if let Err(e) = std::fs::write(&path, body) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        println!("\nJSON verdicts written to {path}");
    }
    if report.failed {
        eprintln!(
            "\nperf gate FAILED: at least one group regressed more than {:.0}% and {:.0}ns",
            max_regression * 100.0,
            noise_floor_ns
        );
        ExitCode::FAILURE
    } else {
        println!(
            "\nperf gate passed (threshold {:.0}%, noise floor {:.0}ns)",
            max_regression * 100.0,
            noise_floor_ns
        );
        ExitCode::SUCCESS
    }
}

/// One group's row of the verdict table, in machine-readable form.
struct GroupVerdict {
    group: String,
    /// `None` for groups absent from the baseline (informational rows).
    baseline_ns: Option<f64>,
    current_ns: f64,
    /// `None` when no baseline total exists to compare against.
    delta_pct: Option<f64>,
    status: String,
}

/// Result of one comparison run.
struct Report {
    text: String,
    failed: bool,
    groups: Vec<GroupVerdict>,
    /// `group/bench` names present only in the current run.
    new_benches: Vec<String>,
    /// `group/bench` names present only in the baseline.
    missing_benches: Vec<String>,
}

impl Report {
    /// Renders the verdict table as JSON for the CI artifact. Emitted with
    /// the same minimal vocabulary `parse_entries` reads (objects of
    /// string/number values), plus `null` for absent baselines.
    fn render_json(&self, max_regression: f64, noise_floor_ns: f64) -> String {
        let num = |v: f64| {
            if v.is_finite() {
                format!("{v:.1}")
            } else {
                "null".to_string()
            }
        };
        let opt = |v: Option<f64>| v.map_or("null".to_string(), num);
        let str_list = |names: &[String]| {
            let quoted: Vec<String> = names.iter().map(|n| format!("\"{}\"", escape(n))).collect();
            format!("[{}]", quoted.join(", "))
        };
        let mut groups = String::new();
        for (i, g) in self.groups.iter().enumerate() {
            if i > 0 {
                groups.push_str(",\n");
            }
            groups.push_str(&format!(
                "    {{\"group\": \"{}\", \"baseline_ns\": {}, \"current_ns\": {}, \
                 \"delta_pct\": {}, \"status\": \"{}\"}}",
                escape(&g.group),
                opt(g.baseline_ns),
                num(g.current_ns),
                opt(g.delta_pct),
                escape(&g.status),
            ));
        }
        format!(
            "{{\n  \"max_regression_pct\": {},\n  \"noise_floor_ns\": {},\n  \
             \"failed\": {},\n  \"groups\": [\n{}\n  ],\n  \
             \"new_benches\": {},\n  \"missing_benches\": {}\n}}\n",
            num(max_regression * 100.0),
            num(noise_floor_ns),
            self.failed,
            groups,
            str_list(&self.new_benches),
            str_list(&self.missing_benches),
        )
    }
}

/// Escapes a string for embedding in a JSON literal.
fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Compares current gate metrics (min-of-N, median fallback) against the
/// baseline, grouping by bench group. A group fails only when it exceeds
/// both the relative threshold and the absolute noise floor.
fn compare(
    baseline: &[Entry],
    current: &[Entry],
    max_regression: f64,
    noise_floor_ns: f64,
) -> Report {
    let index = |entries: &[Entry]| -> BTreeMap<(String, String), f64> {
        entries
            .iter()
            .map(|e| ((e.group.clone(), e.bench.clone()), e.metric_ns()))
            .collect()
    };
    let base = index(baseline);
    let cur = index(current);

    // Per-group sums over the shared benches.
    let mut groups: BTreeMap<String, (f64, f64)> = BTreeMap::new();
    for ((g, b), &b_ns) in &base {
        if let Some(&c_ns) = cur.get(&(g.clone(), b.clone())) {
            let e = groups.entry(g.clone()).or_insert((0.0, 0.0));
            e.0 += b_ns;
            e.1 += c_ns;
        }
    }

    let mut text = String::new();
    let mut failed = false;
    let mut verdicts = Vec::new();
    text.push_str(&format!(
        "{:<28} {:>14} {:>14} {:>9}  {}\n",
        "group", "baseline (ns)", "current (ns)", "delta", "status"
    ));
    for (g, (b_ns, c_ns)) in &groups {
        let delta = if *b_ns > 0.0 { c_ns / b_ns - 1.0 } else { 0.0 };
        let status = if delta > max_regression && c_ns - b_ns > noise_floor_ns {
            failed = true;
            "REGRESSED"
        } else if delta > max_regression {
            "ok (within noise floor)"
        } else if delta < -0.05 {
            "improved"
        } else {
            "ok"
        };
        text.push_str(&format!(
            "{:<28} {:>14.0} {:>14.0} {:>+8.1}%  {}\n",
            g,
            b_ns,
            c_ns,
            delta * 100.0,
            status
        ));
        verdicts.push(GroupVerdict {
            group: g.clone(),
            baseline_ns: Some(*b_ns),
            current_ns: *c_ns,
            delta_pct: Some(delta * 100.0),
            status: status.to_string(),
        });
    }

    // Groups with no benchmark shared with the baseline fall into two
    // cases. A group absent from the baseline entirely is *new* and
    // informational: its total is reported so reviewers see the cost, but
    // it never fails the gate — a group can land in the same PR as its
    // first baseline entry and starts gating on the next refresh. A group
    // that *does* exist in the baseline but shares no bench names had all
    // its benches renamed; letting it drop out would silently un-gate it,
    // so it gates on the whole-group totals instead.
    let base_group_totals: BTreeMap<&String, f64> =
        base.iter().fold(BTreeMap::new(), |mut m, ((g, _), &ns)| {
            *m.entry(g).or_insert(0.0) += ns;
            m
        });
    let mut unshared_groups: BTreeMap<String, f64> = BTreeMap::new();
    for ((g, _), &c_ns) in &cur {
        if !groups.contains_key(g) {
            *unshared_groups.entry(g.clone()).or_insert(0.0) += c_ns;
        }
    }
    for (g, c_ns) in &unshared_groups {
        match base_group_totals.get(g) {
            Some(&b_ns) => {
                let delta = if b_ns > 0.0 { c_ns / b_ns - 1.0 } else { 0.0 };
                let status = if delta > max_regression && c_ns - b_ns > noise_floor_ns {
                    failed = true;
                    "REGRESSED (renamed benches)"
                } else if delta > max_regression {
                    "ok (within noise floor, renamed benches)"
                } else if delta < -0.05 {
                    "improved (renamed benches)"
                } else {
                    "ok (renamed benches)"
                };
                text.push_str(&format!(
                    "{:<28} {:>14.0} {:>14.0} {:>+8.1}%  {}\n",
                    g,
                    b_ns,
                    c_ns,
                    delta * 100.0,
                    status
                ));
                verdicts.push(GroupVerdict {
                    group: g.clone(),
                    baseline_ns: Some(b_ns),
                    current_ns: *c_ns,
                    delta_pct: Some(delta * 100.0),
                    status: status.to_string(),
                });
            }
            None => {
                text.push_str(&format!(
                    "{:<28} {:>14} {:>14.0} {:>9}  {}\n",
                    g, "-", c_ns, "", "new (informational)"
                ));
                verdicts.push(GroupVerdict {
                    group: g.clone(),
                    baseline_ns: None,
                    current_ns: *c_ns,
                    delta_pct: None,
                    status: "new (informational)".to_string(),
                });
            }
        }
    }

    // Informational: benches not shared between the files.
    let new: Vec<String> = cur
        .keys()
        .filter(|k| !base.contains_key(*k))
        .map(|(g, b)| format!("{g}/{b}"))
        .collect();
    let gone: Vec<String> = base
        .keys()
        .filter(|k| !cur.contains_key(*k))
        .map(|(g, b)| format!("{g}/{b}"))
        .collect();
    if !new.is_empty() {
        text.push_str(&format!(
            "\n{} new benchmark(s) not in baseline (not gated): ",
            new.len()
        ));
        text.push_str(&new.join(", "));
        text.push('\n');
    }
    if !gone.is_empty() {
        text.push_str(&format!(
            "\n{} baseline benchmark(s) missing from current run: ",
            gone.len()
        ));
        text.push_str(&gone.join(", "));
        text.push('\n');
    }

    Report {
        text,
        failed,
        groups: verdicts,
        new_benches: new,
        missing_benches: gone,
    }
}

// ---------------------------------------------------------------------------
// Minimal JSON reader for `[{"key": value, ..}, ..]` with string/number
// values (the schema the criterion shim writes).
// ---------------------------------------------------------------------------

/// Parses the benchmark entries out of a results file.
fn parse_entries(text: &str) -> Result<Vec<Entry>, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect(b'[')?;
    let mut entries = Vec::new();
    p.skip_ws();
    if p.peek() == Some(b']') {
        p.expect(b']')?;
        return Ok(entries);
    }
    loop {
        let obj = p.parse_object()?;
        let get_str = |k: &str| -> Result<String, String> {
            match obj.get(k) {
                Some(Value::Str(s)) => Ok(s.clone()),
                _ => Err(format!("entry missing string field '{k}'")),
            }
        };
        let get_num = |k: &str| -> Result<f64, String> {
            match obj.get(k) {
                Some(Value::Num(n)) => Ok(*n),
                _ => Err(format!("entry missing numeric field '{k}'")),
            }
        };
        entries.push(Entry {
            group: get_str("group")?,
            bench: get_str("bench")?,
            median_ns: get_num("median_ns")?,
            // Optional: baselines predating the min-of-N gate lack it.
            min_ns: match obj.get("min_ns") {
                Some(Value::Num(n)) => Some(*n),
                _ => None,
            },
        });
        p.skip_ws();
        match p.next() {
            Some(b',') => p.skip_ws(),
            Some(b']') => break,
            other => return Err(format!("expected ',' or ']', got {other:?}")),
        }
    }
    Ok(entries)
}

/// A parsed JSON scalar.
#[derive(Debug, Clone)]
enum Value {
    Str(String),
    Num(f64),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.next() {
            Some(b) if b == want => Ok(()),
            other => Err(format!("expected '{}', got {other:?}", want as char)),
        }
    }

    fn parse_object(&mut self) -> Result<BTreeMap<String, Value>, String> {
        self.skip_ws();
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(map);
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = match self.peek() {
                Some(b'"') => Value::Str(self.parse_string()?),
                Some(_) => Value::Num(self.parse_number()?),
                None => return Err("unexpected end of input in object".into()),
            };
            map.insert(key, value);
            self.skip_ws();
            match self.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
        Ok(map)
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    other => return Err(format!("unsupported escape {other:?}")),
                },
                Some(b) => out.push(b as char),
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn parse_number(&mut self) -> Result<f64, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .ok_or_else(|| format!("invalid number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(group: &str, bench: &str, median_ns: f64) -> Entry {
        Entry {
            group: group.into(),
            bench: bench.into(),
            median_ns,
            min_ns: None,
        }
    }

    fn entry_min(group: &str, bench: &str, median_ns: f64, min_ns: f64) -> Entry {
        Entry {
            group: group.into(),
            bench: bench.into(),
            median_ns,
            min_ns: Some(min_ns),
        }
    }

    #[test]
    fn parses_shim_schema() {
        let text = r#"[
  {"group": "render_kernels", "bench": "forward_full_frame", "min_ns": 1, "median_ns": 100, "mean_ns": 110, "samples": 10},
  {"group": "g2", "bench": "b/param", "min_ns": 2, "median_ns": 200, "mean_ns": 210, "samples": 5}
]
"#;
        let entries = parse_entries(text).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(
            entries[0],
            entry_min("render_kernels", "forward_full_frame", 100.0, 1.0)
        );
        assert_eq!(entries[1], entry_min("g2", "b/param", 200.0, 2.0));
        assert_eq!(entries[0].metric_ns(), 1.0, "min-of-N preferred");
    }

    #[test]
    fn parses_entries_without_min_ns() {
        let text = r#"[{"group": "g", "bench": "b", "median_ns": 100}]"#;
        let entries = parse_entries(text).unwrap();
        assert_eq!(entries, vec![entry("g", "b", 100.0)]);
        assert_eq!(entries[0].metric_ns(), 100.0, "median fallback");
    }

    #[test]
    fn parses_empty_array() {
        assert!(parse_entries("[]").unwrap().is_empty());
        assert!(parse_entries(" [ ] ").unwrap().is_empty());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_entries("not json").is_err());
        assert!(parse_entries(r#"[{"group": 3}]"#).is_err());
    }

    #[test]
    fn within_threshold_passes() {
        let base = vec![entry("g", "a", 100.0), entry("g", "b", 100.0)];
        let cur = vec![entry("g", "a", 110.0), entry("g", "b", 110.0)];
        let r = compare(&base, &cur, 0.25, 0.0);
        assert!(!r.failed, "{}", r.text);
        assert!(r.text.contains("ok"));
    }

    #[test]
    fn group_regression_fails() {
        let base = vec![entry("g", "a", 100.0), entry("g", "b", 100.0)];
        let cur = vec![entry("g", "a", 160.0), entry("g", "b", 160.0)];
        let r = compare(&base, &cur, 0.25, 0.0);
        assert!(r.failed, "{}", r.text);
        assert!(r.text.contains("REGRESSED"));
    }

    #[test]
    fn one_noisy_bench_is_absorbed_by_the_group_sum() {
        // One microbench doubles (noise) but the group total stays within
        // the threshold because the heavyweight bench dominates the sum.
        let base = vec![entry("g", "micro", 10.0), entry("g", "heavy", 1000.0)];
        let cur = vec![entry("g", "micro", 20.0), entry("g", "heavy", 1000.0)];
        let r = compare(&base, &cur, 0.25, 0.0);
        assert!(!r.failed, "{}", r.text);
    }

    #[test]
    fn improvement_reported() {
        let base = vec![entry("g", "a", 1000.0)];
        let cur = vec![entry("g", "a", 500.0)];
        let r = compare(&base, &cur, 0.25, 0.0);
        assert!(!r.failed);
        assert!(r.text.contains("improved"));
    }

    #[test]
    fn new_and_missing_benches_do_not_gate() {
        let base = vec![entry("g", "a", 100.0), entry("old", "gone", 50.0)];
        let cur = vec![entry("g", "a", 100.0), entry("new", "fresh", 9999.0)];
        let r = compare(&base, &cur, 0.25, 0.0);
        assert!(!r.failed, "{}", r.text);
        assert!(r.text.contains("new/fresh"));
        assert!(r.text.contains("old/gone"));
    }

    /// A bench group that exists only in the current run (its baseline
    /// lands in the same PR) is reported with its total, marked
    /// informational, and never fails the gate — however heavy it is.
    #[test]
    fn new_group_is_informational_not_gated() {
        let base = vec![entry("g", "a", 100.0)];
        let cur = vec![
            entry("g", "a", 100.0),
            entry("large_scene_scaling", "sharded/60000", 5.0e6),
            entry("large_scene_scaling", "sharded/500000", 9.0e6),
        ];
        let r = compare(&base, &cur, 0.25, 0.0);
        assert!(!r.failed, "{}", r.text);
        assert!(
            r.text.contains("new (informational)"),
            "missing informational marker:\n{}",
            r.text
        );
        // The group's summed total appears in the table.
        assert!(r.text.contains("large_scene_scaling"));
        assert!(r.text.contains("14000000"), "summed total:\n{}", r.text);
        // Existing groups still gate as usual alongside a new group.
        let regressed = vec![entry("g", "a", 200.0), entry("new_grp", "x", 1.0)];
        let r2 = compare(&base, &regressed, 0.25, 0.0);
        assert!(r2.failed, "{}", r2.text);
    }

    /// The informational → gated lifecycle of a new bench group: in the PR
    /// that introduces it the group is absent from the committed baseline
    /// and only reported; as soon as a baseline refresh carries it (the PR
    /// 4 `tile_sort`/`tracking_iteration_steady_state` situation, flipped
    /// to gated in PR 5), the very same group fails the gate on a
    /// regression — no code change involved, the presence of baseline
    /// entries is the switch.
    #[test]
    fn new_group_transitions_from_informational_to_gated_once_baseline_exists() {
        let old_baseline = vec![entry("render_kernels", "forward", 100.0)];
        let first_run = vec![
            entry("render_kernels", "forward", 100.0),
            entry("tile_sort", "radix/dense", 500.0),
            entry("tracking_iteration_steady_state", "warm_arena", 900.0),
        ];
        // Introduction PR: the new groups are informational, never gated —
        // even at absurd cost.
        let r = compare(&old_baseline, &first_run, 0.25, 0.0);
        assert!(!r.failed, "{}", r.text);
        assert_eq!(r.text.matches("new (informational)").count(), 2);

        // The baseline refresh adopts the first run; the next cycle gates
        // the same groups: within threshold passes...
        let refreshed_baseline = first_run.clone();
        let ok_run = vec![
            entry("render_kernels", "forward", 100.0),
            entry("tile_sort", "radix/dense", 550.0),
            entry("tracking_iteration_steady_state", "warm_arena", 950.0),
        ];
        let r2 = compare(&refreshed_baseline, &ok_run, 0.25, 0.0);
        assert!(!r2.failed, "{}", r2.text);
        assert!(!r2.text.contains("new (informational)"), "{}", r2.text);

        // ...and a >25% regression in a freshly-adopted group now fails.
        let regressed_run = vec![
            entry("render_kernels", "forward", 100.0),
            entry("tile_sort", "radix/dense", 700.0),
            entry("tracking_iteration_steady_state", "warm_arena", 900.0),
        ];
        let r3 = compare(&refreshed_baseline, &regressed_run, 0.25, 0.0);
        assert!(r3.failed, "{}", r3.text);
        assert!(r3.text.contains("REGRESSED"), "{}", r3.text);
    }

    /// Renaming every bench inside an existing group must not let it slip
    /// out of the gate as "new": it gates on the whole-group totals.
    #[test]
    fn fully_renamed_group_still_gates() {
        let base = vec![
            entry("g", "size/1000", 100.0),
            entry("g", "size/2000", 100.0),
        ];
        // Renamed params and regressed 10x: must fail.
        let cur = vec![
            entry("g", "size/1024", 1000.0),
            entry("g", "size/2048", 1000.0),
        ];
        let r = compare(&base, &cur, 0.25, 0.0);
        assert!(r.failed, "{}", r.text);
        assert!(r.text.contains("renamed benches"), "{}", r.text);
        // Renamed but within threshold: passes, still labeled.
        let ok = vec![
            entry("g", "size/1024", 110.0),
            entry("g", "size/2048", 110.0),
        ];
        let r2 = compare(&base, &ok, 0.25, 0.0);
        assert!(!r2.failed, "{}", r2.text);
        assert!(r2.text.contains("ok (renamed benches)"), "{}", r2.text);
    }

    #[test]
    fn empty_baseline_passes() {
        let r = compare(&[], &[entry("g", "a", 1.0)], 0.25, 0.0);
        assert!(!r.failed);
    }

    /// min-of-N is the gated metric when present: a doubled median with a
    /// stable minimum is scheduler noise, not a regression — and the
    /// converse (stable median, regressed minimum) is a real slowdown.
    #[test]
    fn min_of_n_is_gated_not_median() {
        let base = vec![entry_min("g", "a", 100.0, 90.0)];
        // Median doubled (noisy run) but min within threshold: passes.
        let noisy = vec![entry_min("g", "a", 200.0, 95.0)];
        let r = compare(&base, &noisy, 0.25, 0.0);
        assert!(!r.failed, "{}", r.text);
        // Median flat but min regressed 2x: fails.
        let slow = vec![entry_min("g", "a", 100.0, 180.0)];
        let r2 = compare(&base, &slow, 0.25, 0.0);
        assert!(r2.failed, "{}", r2.text);
    }

    /// Baselines committed before the shim recorded `min_ns` gate on their
    /// medians; current entries still contribute their minimum. The mixed
    /// comparison stays meaningful because min <= median always.
    #[test]
    fn old_baseline_without_min_ns_gates_on_median() {
        let base = vec![entry("g", "a", 100.0)];
        let cur = vec![entry_min("g", "a", 500.0, 160.0)];
        let r = compare(&base, &cur, 0.25, 0.0);
        assert!(r.failed, "min 160 vs median 100 is +60%:\n{}", r.text);
        let ok = vec![entry_min("g", "a", 500.0, 110.0)];
        let r2 = compare(&base, &ok, 0.25, 0.0);
        assert!(!r2.failed, "{}", r2.text);
    }

    /// The absolute noise floor keeps tiny groups from flaking the gate:
    /// +60% on a 100ns group is jitter, +60% on a millisecond group is a
    /// regression — same percentage, different verdicts.
    #[test]
    fn noise_floor_absorbs_small_absolute_regressions() {
        let base = vec![entry("tiny", "a", 100.0), entry("big", "a", 1.0e6)];
        let cur = vec![entry("tiny", "a", 160.0), entry("big", "a", 1.0e6)];
        let r = compare(&base, &cur, 0.25, 100_000.0);
        assert!(!r.failed, "{}", r.text);
        assert!(r.text.contains("ok (within noise floor)"), "{}", r.text);

        // The same +60% on the big group exceeds the floor and fails.
        let cur2 = vec![entry("tiny", "a", 100.0), entry("big", "a", 1.6e6)];
        let r2 = compare(&base, &cur2, 0.25, 100_000.0);
        assert!(r2.failed, "{}", r2.text);
        assert!(r2.text.contains("REGRESSED"), "{}", r2.text);
    }

    /// `--json` emits the same verdict table machine-readably: one object
    /// per group with baseline/current/delta/status, the not-gated bench
    /// lists, the thresholds and the overall verdict — parseable by the
    /// same minimal reader vocabulary the comparator consumes.
    #[test]
    fn json_report_carries_the_full_verdict_table() {
        let base = vec![entry("g", "a", 100.0), entry("old", "gone", 50.0)];
        let cur = vec![
            entry("g", "a", 160.0),
            entry("fresh_group", "b", 999.0),
            entry("g", "new_bench", 1.0),
        ];
        let r = compare(&base, &cur, 0.25, 0.0);
        assert!(r.failed, "{}", r.text);
        let json = r.render_json(0.25, 0.0);
        for needle in [
            "\"max_regression_pct\": 25.0",
            "\"noise_floor_ns\": 0.0",
            "\"failed\": true",
            "\"group\": \"g\"",
            "\"status\": \"REGRESSED\"",
            "\"group\": \"fresh_group\"",
            "\"baseline_ns\": null",
            "\"status\": \"new (informational)\"",
            "\"new_benches\": [\"fresh_group/b\", \"g/new_bench\"]",
            "\"missing_benches\": [\"old/gone\"]",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
        // Structurally balanced (no raw-string escapes to trip on here).
        let balance = |open: char, close: char| {
            json.chars().filter(|&c| c == open).count()
                == json.chars().filter(|&c| c == close).count()
        };
        assert!(balance('{', '}') && balance('[', ']'), "{json}");
    }

    /// The floor also applies to the renamed-benches whole-group path.
    #[test]
    fn noise_floor_applies_to_renamed_groups() {
        let base = vec![entry("g", "size/1000", 100.0)];
        let cur = vec![entry("g", "size/1024", 160.0)];
        let r = compare(&base, &cur, 0.25, 100_000.0);
        assert!(!r.failed, "{}", r.text);
        assert!(
            r.text.contains("ok (within noise floor, renamed benches)"),
            "{}",
            r.text
        );
    }
}
