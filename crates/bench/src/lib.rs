//! Benchmark harness crate. The Criterion benchmarks live in
//! `benches/paper_benches.rs`, one group per paper table/figure plus the
//! perf-trajectory groups of this reproduction's own subsystems:
//!
//! | group | artifact |
//! |---|---|
//! | `render_kernels` | substrate (Steps ❶–❺ wall-clock) |
//! | `soa_vs_aos` | SoA kernels vs the preserved AoS reference path |
//! | `fused_tile_pass` | fused render+backward vs the unfused pair |
//! | `table2_baseline_slams` | Tab. 2 |
//! | `table6_rtgs_algorithm` | Tab. 6 / Fig. 14 |
//! | `fig15_hardware_fps` | Fig. 15 / Tab. 7 |
//! | `fig17_ablation` | Fig. 17(a)/(b) |
//! | `ablation_pruning_overhead` | the "zero-overhead scoring" claim |
//! | `tracking_iteration` | per-iteration tracking unit cost |
//! | `runtime_scaling` | serial vs parallel kernels at pool sizes 1–8 |
//! | `session_serving` | multi-session scheduling vs back-to-back runs |
//!
//! Results land in `BENCH_RESULTS.json` at the workspace root — the
//! committed copy is the CI perf gate's baseline (see CONTRIBUTING.md and
//! `src/bin/compare.rs`). Set `BENCH_QUICK=1` for the capped quick mode the
//! `perf-smoke` job uses.
