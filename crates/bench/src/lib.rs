//! Benchmark harness crate. The Criterion benchmarks live in
//! `benches/paper_benches.rs`, one group per paper table/figure:
//!
//! | group | artifact |
//! |---|---|
//! | `render_kernels` | substrate (Steps ❶–❺ wall-clock) |
//! | `table2_baseline_slams` | Tab. 2 |
//! | `table6_rtgs_algorithm` | Tab. 6 / Fig. 14 |
//! | `fig15_hardware_fps` | Fig. 15 / Tab. 7 |
//! | `fig17_ablation` | Fig. 17(a)/(b) |
//! | `ablation_pruning_overhead` | the "zero-overhead scoring" claim |
//! | `tracking_iteration` | per-iteration tracking unit cost |
