//! Criterion benchmarks keyed to the paper's tables and figures.
//!
//! Each group regenerates the computational core of one evaluation artifact
//! on real workloads (wall-clock of the Rust implementation, plus the cycle
//! models for hardware comparisons). Run with:
//!
//! ```bash
//! cargo bench --workspace
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtgs_accel::{
    plugin_iteration, simulate_run, Aggregation, ArchConfig, DeviceSpec, FrameWorkload, GpuSpec,
    HardwareModel, PluginConfig, RunWorkload, Scheduling, TechNode,
};
use rtgs_core::{AdaptivePruner, PruningConfig, RtgsConfig};
use rtgs_render::reference;
use rtgs_render::{
    backward, backward_fused_with, backward_with, compute_loss, render_frame, render_frame_with,
    render_fused_with, render_with, LossConfig, WorkloadTrace,
};
use rtgs_runtime::{
    Backend, BackendChoice, IngestConfig, IngestHub, LatePolicy, Parallel, Serial, Serve,
};
use rtgs_scene::{DatasetProfile, SyntheticDataset};
use rtgs_slam::{BaseAlgorithm, OpenLoopSession, SlamConfig, SlamPipeline, SlamReport};
use rtgs_snapshot::{Channel, CheckpointLog};
use std::time::Duration;

fn quick(c: &mut Criterion) -> &mut Criterion {
    c
}

fn small_dataset() -> SyntheticDataset {
    SyntheticDataset::generate(DatasetProfile::tum_analog().small(), 4)
}

fn to_workload(report: &SlamReport) -> RunWorkload {
    RunWorkload {
        frames: report
            .frames
            .iter()
            .map(|f| FrameWorkload {
                tracking: f.traces.clone(),
                mapping: f.mapping_traces.clone(),
                is_keyframe: f.is_keyframe,
            })
            .collect(),
    }
}

fn traced_run() -> (RunWorkload, Vec<WorkloadTrace>) {
    let ds = small_dataset();
    let mut cfg = SlamConfig::for_algorithm(BaseAlgorithm::MonoGs).with_frames(4);
    cfg.tracking.iterations = 4;
    cfg.mapping_iterations = 4;
    cfg.record_traces = true;
    let report = SlamPipeline::new(cfg, &ds).run();
    let traces: Vec<WorkloadTrace> = report
        .frames
        .iter()
        .flat_map(|f| f.traces.clone())
        .collect();
    (to_workload(&report), traces)
}

/// Rendering kernels (Steps ❶–❺): the substrate every experiment rests on.
fn bench_render_kernels(c: &mut Criterion) {
    let mut group = quick(c).benchmark_group("render_kernels");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let ds = small_dataset();
    let scene = ds.reference_scene.clone();
    let w2c = ds.poses_c2w[0].inverse();

    group.bench_function("forward_full_frame", |b| {
        b.iter(|| render_frame(&scene, &w2c, &ds.camera, None))
    });

    let ctx = render_frame(&scene, &w2c, &ds.camera, None);
    let loss = compute_loss(
        &ctx.output,
        &ds.frames[0].color,
        ds.frames[0].depth.as_ref(),
        &LossConfig::default(),
    );
    group.bench_function("backward_full_frame", |b| {
        b.iter(|| {
            backward(
                &scene,
                &ctx.projection,
                &ctx.tiles,
                &ds.camera,
                &w2c,
                &loss.pixel_grads,
            )
        })
    });
    group.finish();
}

/// SoA vs AoS: the production structure-of-arrays kernels against the
/// seed's preserved array-of-structs reference path, same scene, same
/// camera, serial execution — what the layout refactor buys by itself.
fn bench_soa_vs_aos(c: &mut Criterion) {
    let mut group = c.benchmark_group("soa_vs_aos");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let ds = small_dataset();
    let scene = ds.reference_scene.clone();
    let w2c = ds.poses_c2w[0].inverse();

    group.bench_function("forward/soa", |b| {
        b.iter(|| render_frame(&scene, &w2c, &ds.camera, None))
    });
    group.bench_function("forward/aos", |b| {
        b.iter(|| reference::render_frame_aos(&scene, &w2c, &ds.camera, None))
    });

    let ctx = render_frame(&scene, &w2c, &ds.camera, None);
    let (aos_proj, aos_tiles, _) = reference::render_frame_aos(&scene, &w2c, &ds.camera, None);
    let loss = compute_loss(
        &ctx.output,
        &ds.frames[0].color,
        ds.frames[0].depth.as_ref(),
        &LossConfig::default(),
    );
    group.bench_function("backward/soa", |b| {
        b.iter(|| {
            backward(
                &scene,
                &ctx.projection,
                &ctx.tiles,
                &ds.camera,
                &w2c,
                &loss.pixel_grads,
            )
        })
    });
    group.bench_function("backward/aos", |b| {
        b.iter(|| {
            reference::backward_aos(
                &scene,
                &aos_proj,
                &aos_tiles,
                &ds.camera,
                &w2c,
                &loss.pixel_grads,
            )
        })
    });
    group.finish();
}

/// Fused tile pass: one render+backward iteration with the forward pass
/// recording fragment sequences (backward consumes them) versus the unfused
/// pair (backward re-walks every pixel's splat list).
///
/// Pixel gradients are dense (every pixel carries color and depth loss), as
/// in a mid-optimization tracking/mapping iteration — the workload the
/// fusion exists for; at the converged pose gradients vanish and the
/// backward pass is free either way.
fn bench_fused_tile_pass(c: &mut Criterion) {
    let mut group = c.benchmark_group("fused_tile_pass");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let ds = small_dataset();
    let scene = ds.reference_scene.clone();
    let w2c = ds.poses_c2w[0].inverse();
    let backend = Serial;

    // Fixed dense upstream gradients so both variants time render +
    // backward on identical, non-degenerate inputs.
    let mut pixel_grads = rtgs_render::PixelGrads::zeros(ds.camera.width, ds.camera.height);
    for (i, g) in pixel_grads.color.iter_mut().enumerate() {
        *g = rtgs_math::Vec3::splat(1.0) * (((i % 13) as f32 - 6.0) * 0.1);
    }
    for (i, g) in pixel_grads.depth.iter_mut().enumerate() {
        *g = ((i % 7) as f32 - 3.0) * 0.05;
    }
    let ctx = render_frame(&scene, &w2c, &ds.camera, None);
    let (projection, tiles) = (&ctx.projection, &ctx.tiles);

    group.bench_function("render_backward/unfused", |b| {
        b.iter(|| {
            let output = render_with(projection, tiles, &ds.camera, &backend);
            let grads = backward_with(
                &scene,
                projection,
                tiles,
                &ds.camera,
                &w2c,
                &pixel_grads,
                &backend,
            );
            (output, grads)
        })
    });
    group.bench_function("render_backward/fused", |b| {
        b.iter(|| {
            let fused = render_fused_with(projection, tiles, &ds.camera, &backend);
            let grads = backward_fused_with(
                &scene,
                projection,
                tiles,
                &ds.camera,
                &w2c,
                &pixel_grads,
                &fused.fragments,
                &backend,
            );
            (fused.output, grads)
        })
    });
    group.finish();
}

/// Tab. 2: one SLAM frame per base algorithm.
fn bench_table2_baseline_slams(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_baseline_slams");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let ds = small_dataset();
    for algo in BaseAlgorithm::all() {
        group.bench_with_input(
            BenchmarkId::from_parameter(algo.name()),
            &algo,
            |b, &algo| {
                b.iter(|| {
                    let mut cfg = SlamConfig::for_algorithm(algo).with_frames(2);
                    cfg.tracking.iterations = 3;
                    cfg.mapping_iterations = 3;
                    SlamPipeline::new(cfg, &ds).run()
                })
            },
        );
    }
    group.finish();
}

/// Tab. 6 / Fig. 14: base vs RTGS algorithm wall-clock.
fn bench_table6_rtgs_algorithm(c: &mut Criterion) {
    let mut group = c.benchmark_group("table6_rtgs_algorithm");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let ds = small_dataset();
    let mk_cfg = || {
        let mut cfg = SlamConfig::for_algorithm(BaseAlgorithm::MonoGs).with_frames(3);
        cfg.tracking.iterations = 4;
        cfg.mapping_iterations = 4;
        cfg
    };
    group.bench_function("base", |b| {
        b.iter(|| SlamPipeline::new(mk_cfg(), &ds).run())
    });
    group.bench_function("ours_full", |b| {
        b.iter(|| {
            SlamPipeline::with_extension(mk_cfg(), &ds, RtgsConfig::full().into_extension()).run()
        })
    });
    group.bench_function("ours_pruning_only", |b| {
        b.iter(|| {
            SlamPipeline::with_extension(mk_cfg(), &ds, RtgsConfig::pruning_only().into_extension())
                .run()
        })
    });
    group.bench_function("ours_downsampling_only", |b| {
        b.iter(|| {
            SlamPipeline::with_extension(
                mk_cfg(),
                &ds,
                RtgsConfig::downsampling_only().into_extension(),
            )
            .run()
        })
    });
    group.finish();
}

/// Fig. 15 / Tab. 7: hardware model evaluation throughput.
fn bench_fig15_hardware_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig15_hardware_fps");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    let (run, _) = traced_run();
    let models: [(&str, HardwareModel); 4] = [
        ("onx", HardwareModel::onx()),
        ("onx_distwar", HardwareModel::onx_distwar()),
        ("rtgs", HardwareModel::rtgs()),
        ("gauspu", HardwareModel::gauspu()),
    ];
    for (name, hw) in models {
        group.bench_with_input(BenchmarkId::from_parameter(name), &hw, |b, hw| {
            b.iter(|| simulate_run(&run, hw, true))
        });
    }
    group.finish();
}

/// Fig. 17: plug-in configuration ablations on a real trace.
fn bench_fig17_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig17_ablation");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    let (_, traces) = traced_run();
    let trace = traces.last().expect("need traces").clone();
    let prev = traces[traces.len().saturating_sub(2)].clone();
    let configs: [(&str, PluginConfig); 4] = [
        ("bare", PluginConfig::bare()),
        (
            "gmu",
            PluginConfig {
                aggregation: Aggregation::Gmu,
                ..PluginConfig::bare()
            },
        ),
        (
            "gmu_rb",
            PluginConfig {
                aggregation: Aggregation::Gmu,
                rb_buffer: true,
                ..PluginConfig::bare()
            },
        ),
        ("full_rtgs", PluginConfig::rtgs()),
    ];
    for (name, cfg) in configs {
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| plugin_iteration(&trace, Some(&prev), cfg))
        });
    }
    // Scheduling ablation (Fig. 17a).
    for sched in [
        Scheduling::Static,
        Scheduling::Streaming,
        Scheduling::StreamingPaired,
        Scheduling::Ideal,
    ] {
        let cfg = PluginConfig {
            arch: ArchConfig::paper(),
            scheduling: sched,
            rb_buffer: true,
            aggregation: Aggregation::Gmu,
        };
        group.bench_with_input(
            BenchmarkId::new("scheduling", format!("{sched:?}")),
            &cfg,
            |b, cfg| b.iter(|| plugin_iteration(&trace, Some(&prev), cfg)),
        );
    }
    group.finish();
}

/// Ablation: pruning-score bookkeeping cost (the paper's "zero overhead"
/// claim — scoring must be negligible next to a backward pass).
fn bench_pruning_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_pruning_overhead");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    let ds = small_dataset();
    let scene = ds.reference_scene.clone();
    let w2c = ds.poses_c2w[0].inverse();
    let ctx = render_frame(&scene, &w2c, &ds.camera, None);
    let loss = compute_loss(
        &ctx.output,
        &ds.frames[0].color,
        ds.frames[0].depth.as_ref(),
        &LossConfig::default(),
    );
    let grads = backward(
        &scene,
        &ctx.projection,
        &ctx.tiles,
        &ds.camera,
        &w2c,
        &loss.pixel_grads,
    );

    group.bench_function("importance_scoring", |b| {
        b.iter(|| {
            grads
                .gaussians
                .iter()
                .map(|g| g.importance_score(0.8))
                .sum::<f32>()
        })
    });
    group.bench_function("full_prune_step", |b| {
        let mut pruner = AdaptivePruner::new(
            PruningConfig {
                initial_interval: 1,
                ..Default::default()
            },
            scene.len(),
        );
        let all_ids: Vec<u32> = (0..scene.len() as u32).collect();
        b.iter(|| {
            let mut mask = vec![true; scene.len()];
            let artifacts = rtgs_slam::IterationArtifacts {
                iteration: 0,
                loss: loss.loss,
                grads: &grads,
                visible_ids: &all_ids,
                tiles: &ctx.tiles,
                output: &ctx.output,
            };
            pruner.begin_frame(scene.len());
            pruner.observe_iteration(&artifacts, &mut mask);
            mask
        })
    });
    group.finish();
}

/// Microbench: device specs and energy tables (Tab. 4/5 accessors used by
/// the experiment harness; kept here so regressions in the config layer
/// surface in the bench logs).
fn bench_config_layer(c: &mut Criterion) {
    let mut group = c.benchmark_group("config_layer");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(1));
    group.bench_function("table5", |b| b.iter(DeviceSpec::table5));
    group.bench_function("rtgs_scaled", |b| b.iter(|| DeviceSpec::rtgs(TechNode::N8)));
    group.bench_function("gpu_specs", |b| b.iter(GpuSpec::onx));
    group.finish();
}

/// Tracking pose-optimization cost per iteration (the unit the paper's
/// per-frame iteration budgets multiply).
fn bench_tracking_iteration(c: &mut Criterion) {
    let mut group = c.benchmark_group("tracking_iteration");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let ds = small_dataset();
    let map = rtgs_render::ShardedScene::from_scene(&ds.reference_scene, 1.0);
    use rtgs_slam::{track_frame, NoObserver, StageNanos, TrackingConfig};
    group.bench_function("track_frame_4_iters", |b| {
        b.iter(|| {
            let mut mask = vec![true; map.capacity()];
            let mut t = StageNanos::default();
            track_frame(
                &map,
                ds.poses_c2w[1].inverse(),
                &ds.frames[1],
                &ds.camera,
                &TrackingConfig {
                    iterations: 4,
                    ..Default::default()
                },
                &mut mask,
                &mut NoObserver,
                &mut t,
            )
        })
    });
    // With 50% of the map masked (the pruning speedup source).
    group.bench_function("track_frame_4_iters_half_masked", |b| {
        b.iter(|| {
            let mut mask: Vec<bool> = (0..map.capacity()).map(|i| i % 2 == 0).collect();
            let mut t = StageNanos::default();
            track_frame(
                &map,
                ds.poses_c2w[1].inverse(),
                &ds.frames[1],
                &ds.camera,
                &TrackingConfig {
                    iterations: 4,
                    ..Default::default()
                },
                &mut mask,
                &mut NoObserver,
                &mut t,
            )
        })
    });
    group.finish();
}

/// Step ❷ in isolation: the CSR + stable-radix tile assignment against the
/// legacy per-tile `Vec` + comparison `sort_by` it replaced (both produce
/// identical depth ordering — property-tested in
/// `crates/render/tests/arena_equivalence.rs`). `csr_radix_reused` is the
/// production path: rebuild into arena-owned storage, zero steady-state
/// allocations; `csr_radix_fresh` pays the allocations each build.
fn bench_tile_sort(c: &mut Criterion) {
    let mut group = c.benchmark_group("tile_sort");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));

    // Two workload shapes: the SLAM bench scene (short per-tile lists,
    // allocation-dominated) and a dense overlap scene (hundreds of splats
    // per tile, sort-dominated — the regime the radix pass targets).
    let ds = small_dataset();
    let slam_cam = ds.camera;
    let slam_proj = rtgs_render::project_scene_with(
        &ds.reference_scene,
        &ds.poses_c2w[0].inverse(),
        &slam_cam,
        None,
        &Serial,
    );
    let dense_cam = rtgs_render::PinholeCamera::from_fov(128, 96, 1.2);
    let dense_scene: rtgs_render::GaussianScene = (0..4000)
        .map(|i| {
            rtgs_render::Gaussian3d::from_activated(
                rtgs_math::Vec3::new(
                    ((i * 37) % 97) as f32 * 0.02 - 1.0,
                    ((i * 17) % 53) as f32 * 0.03 - 0.8,
                    1.0 + ((i * 29) % 31) as f32 * 0.12,
                ),
                rtgs_math::Vec3::splat(0.08),
                rtgs_math::Quat::IDENTITY,
                0.5,
                rtgs_math::Vec3::splat(0.5),
            )
        })
        .collect();
    let dense_proj = rtgs_render::project_scene_with(
        &dense_scene,
        &rtgs_math::Se3::IDENTITY,
        &dense_cam,
        None,
        &Serial,
    );

    for (label, projection, camera) in [
        ("slam", &slam_proj, &slam_cam),
        ("dense", &dense_proj, &dense_cam),
    ] {
        group.bench_with_input(
            BenchmarkId::new("legacy_per_tile_sort_by", label),
            projection,
            |b, projection| b.iter(|| rtgs_render::build_tile_lists_legacy(projection, camera)),
        );
        group.bench_with_input(
            BenchmarkId::new("csr_radix_fresh", label),
            projection,
            |b, projection| b.iter(|| rtgs_render::TileAssignment::build(projection, camera)),
        );
        let mut scratch = rtgs_render::TileBinScratch::default();
        let mut out = rtgs_render::TileAssignment::default();
        group.bench_with_input(
            BenchmarkId::new("csr_radix_reused", label),
            projection,
            |b, projection| {
                b.iter(|| {
                    rtgs_render::build_tiles_into(projection, camera, &mut scratch, &mut out);
                    out.intersection_count()
                })
            },
        );
    }
    group.finish();
}

/// One full steady-state tracking iteration — frustum cull → project →
/// tile assign → fused forward → loss → fused backward — through a warm
/// [`rtgs_render::FrameArena`] (the production zero-allocation path)
/// versus the same stages through the fresh-allocation entry points. The
/// delta is exactly the heap churn the arena removes.
fn bench_tracking_iteration_steady_state(c: &mut Criterion) {
    let mut group = c.benchmark_group("tracking_iteration_steady_state");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    let ds = small_dataset();
    let map = rtgs_render::ShardedScene::from_scene(&ds.reference_scene, 1.0);
    let mask = vec![true; map.capacity()];
    let w2c = ds.poses_c2w[1].inverse();
    let frame = &ds.frames[1];
    let cfg = LossConfig::default();
    let backend = Serial;

    let mut arena = rtgs_render::FrameArena::new();
    // Warm-up: establish every buffer's steady-state capacity.
    for _ in 0..2 {
        arena.cull(&map, &w2c, &ds.camera, Some(&mask), &backend);
        arena.project_visible(&w2c, &ds.camera, &backend);
        arena.assign_tiles(&ds.camera, &backend);
        arena.render_fused(&ds.camera, &backend);
        arena.compute_loss(&frame.color, frame.depth.as_ref(), &cfg);
        arena.backward_visible_fused(&ds.camera, &w2c, &backend);
    }
    group.bench_function("arena_reuse", |b| {
        b.iter(|| {
            arena.cull(&map, &w2c, &ds.camera, Some(&mask), &backend);
            arena.project_visible(&w2c, &ds.camera, &backend);
            arena.assign_tiles(&ds.camera, &backend);
            arena.render_fused(&ds.camera, &backend);
            let loss = arena.compute_loss(&frame.color, frame.depth.as_ref(), &cfg);
            arena.backward_visible_fused(&ds.camera, &w2c, &backend);
            loss
        })
    });
    group.bench_function("fresh_alloc", |b| {
        b.iter(|| {
            let visible = map.visible_frame_with(&w2c, &ds.camera, Some(&mask), &backend);
            let projection =
                rtgs_render::project_scene_with(&visible.scene, &w2c, &ds.camera, None, &backend);
            let tiles = rtgs_render::TileAssignment::build_with(&projection, &ds.camera, &backend);
            let fused = render_fused_with(&projection, &tiles, &ds.camera, &backend);
            let loss = compute_loss(&fused.output, &frame.color, frame.depth.as_ref(), &cfg);
            let grads = backward_fused_with(
                &visible.scene,
                &projection,
                &tiles,
                &ds.camera,
                &w2c,
                &loss.pixel_grads,
                &fused.fragments,
                &backend,
            );
            (loss.loss, grads.pose)
        })
    });
    group.finish();
}

/// Runtime subsystem: serial-vs-parallel wall-clock of the forward and
/// backward kernels at pool sizes 1/2/4/8 (the perf trajectory of the
/// `rtgs-runtime` work-stealing backend, recorded in `BENCH_RESULTS.json`).
fn bench_runtime_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime_scaling");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let ds = small_dataset();
    let scene = ds.reference_scene.clone();
    let w2c = ds.poses_c2w[0].inverse();

    let ctx = render_frame(&scene, &w2c, &ds.camera, None);
    let loss = compute_loss(
        &ctx.output,
        &ds.frames[0].color,
        ds.frames[0].depth.as_ref(),
        &LossConfig::default(),
    );

    let mut bench_backend = |label: String, backend: Box<dyn Backend>| {
        group.bench_with_input(
            BenchmarkId::new("forward", &label),
            &backend,
            |b, backend| b.iter(|| render_frame_with(&scene, &w2c, &ds.camera, None, &**backend)),
        );
        group.bench_with_input(
            BenchmarkId::new("backward", &label),
            &backend,
            |b, backend| {
                b.iter(|| {
                    backward_with(
                        &scene,
                        &ctx.projection,
                        &ctx.tiles,
                        &ds.camera,
                        &w2c,
                        &loss.pixel_grads,
                        &**backend,
                    )
                })
            },
        );
    };
    bench_backend("serial".to_string(), Box::new(Serial));
    for threads in [1usize, 2, 4, 8] {
        bench_backend(
            format!("parallel-{threads}"),
            Box::new(Parallel::new(threads)),
        );
    }
    group.finish();
}

/// Large-scene scaling: per-frame projection + render cost as the *total*
/// map size grows from 60k to 500k Gaussians while the frustum's contents
/// stay fixed (the camera sees the same slab of a long lateral strip; the
/// rest of the map extends outside the field of view).
///
/// `sharded/N` runs the production path — shard frustum cull, gather,
/// chunked projection, tile build, render — whose cost should stay
/// near-flat in N. `flat/N` runs the same kernels over the flat full
/// scene, which must walk (and individually cull) every Gaussian and
/// therefore degrades linearly. Both produce bitwise-identical images
/// (see `crates/render/tests/shard_equivalence.rs`).
fn bench_large_scene_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("large_scene_scaling");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let cam = rtgs_render::PinholeCamera::from_fov(96, 64, 1.2);
    let w2c = rtgs_math::Se3::IDENTITY;

    for &n in &[60_000usize, 160_000, 500_000] {
        // A long strip along +x at viewing depth: fixed Gaussian density,
        // so the camera (looking down +z from the origin) always has the
        // same ~frustum occupancy while the strip — and the map — grows.
        let mut map = rtgs_render::ShardedScene::new(1.0);
        for i in 0..n {
            let x = i as f32 * 0.02;
            let z = 2.0 + (i % 50) as f32 * 0.06;
            let y = ((i % 7) as f32 - 3.0) * 0.12;
            map.insert(rtgs_render::Gaussian3d::from_activated(
                rtgs_math::Vec3::new(x, y, z),
                rtgs_math::Vec3::splat(0.03),
                rtgs_math::Quat::IDENTITY,
                0.6,
                rtgs_math::Vec3::new(0.4, 0.6, 0.8),
            ));
        }
        map.refresh_bounds();
        let (flat, _) = map.flatten();
        let backend = Serial;

        group.bench_with_input(BenchmarkId::new("sharded", n), &map, |b, map| {
            b.iter(|| {
                let vf = map.visible_frame_with(&w2c, &cam, None, &backend);
                let projection =
                    rtgs_render::project_scene_with(&vf.scene, &w2c, &cam, None, &backend);
                let tiles = rtgs_render::TileAssignment::build_with(&projection, &cam, &backend);
                render_with(&projection, &tiles, &cam, &backend)
            })
        });
        group.bench_with_input(BenchmarkId::new("flat", n), &flat, |b, flat| {
            b.iter(|| {
                let projection = rtgs_render::project_scene_with(flat, &w2c, &cam, None, &backend);
                let tiles = rtgs_render::TileAssignment::build_with(&projection, &cam, &backend);
                render_with(&projection, &tiles, &cam, &backend)
            })
        });
    }
    group.finish();
}

/// Runtime subsystem: serving 4 concurrent SLAM sessions versus running
/// them back-to-back.
fn bench_session_serving(c: &mut Criterion) {
    let mut group = c.benchmark_group("session_serving");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let ds = SyntheticDataset::generate(DatasetProfile::tum_analog().tiny(), 3);
    let mk_cfg = |algo: BaseAlgorithm, backend: BackendChoice| {
        let mut cfg = SlamConfig::for_algorithm(algo)
            .with_frames(3)
            .with_backend(backend);
        cfg.tracking.iterations = 2;
        cfg.mapping_iterations = 2;
        cfg
    };
    group.bench_function("sequential_4_sessions", |b| {
        b.iter(|| {
            BaseAlgorithm::all()
                .into_iter()
                .map(|algo| SlamPipeline::new(mk_cfg(algo, BackendChoice::Serial), &ds).run())
                .collect::<Vec<_>>()
        })
    });
    group.bench_function("scheduled_4_sessions", |b| {
        b.iter(|| {
            let sessions = BaseAlgorithm::all()
                .into_iter()
                .map(|algo| {
                    (
                        algo.name().to_string(),
                        SlamPipeline::new(mk_cfg(algo, BackendChoice::Serial), &ds),
                    )
                })
                .collect();
            Serve::builder().threads(4).run(sessions)
        })
    });
    group.finish();
}

/// Open-loop ingestion primitives and serving overhead: the bounded-inbox
/// push/pop round trip, the drop-oldest churn path under a producer storm,
/// and the 4-session open-loop serve against the closed-loop equivalent
/// from `session_serving`. All CPU-only and arrival-free (tickets are
/// pre-queued), so timings are stable enough for BENCH_RESULTS.json.
fn bench_loadgen(c: &mut Criterion) {
    let mut group = c.benchmark_group("loadgen");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    group.bench_function("inbox_push_pop_256", |b| {
        b.iter(|| {
            let hub = IngestHub::new(IngestConfig::new().with_inbox_capacity(64));
            let (tx, rx) = hub.channel::<u64>().unwrap();
            let mut sum = 0u64;
            for i in 0..256u64 {
                tx.push(i);
                let frame = rx.try_pop().unwrap();
                sum += rx.frame_done(frame, false);
            }
            sum
        })
    });
    group.bench_function("drop_oldest_storm_256", |b| {
        b.iter(|| {
            let hub = IngestHub::new(
                IngestConfig::new()
                    .with_inbox_capacity(4)
                    .with_late_policy(LatePolicy::DropOldest),
            );
            let (tx, rx) = hub.channel::<u64>().unwrap();
            for i in 0..256u64 {
                tx.push(i);
            }
            tx.close();
            let mut drained = 0u64;
            while let Some(frame) = rx.try_pop() {
                rx.frame_done(frame, false);
                drained += 1;
            }
            drained
        })
    });
    let ds = SyntheticDataset::generate(DatasetProfile::tum_analog().tiny(), 3);
    let mk_cfg = |algo: BaseAlgorithm| {
        let mut cfg = SlamConfig::for_algorithm(algo).with_frames(3);
        cfg.tracking.iterations = 2;
        cfg.mapping_iterations = 2;
        cfg
    };
    group.bench_function("open_loop_4_sessions_prequeued", |b| {
        b.iter(|| {
            let hub = IngestHub::new(IngestConfig::new().with_inbox_capacity(8));
            let sessions = BaseAlgorithm::all()
                .into_iter()
                .map(|algo| {
                    let (tx, rx) = hub.channel::<()>().unwrap();
                    for _ in 0..3 {
                        tx.push(());
                    }
                    tx.close();
                    (
                        algo.name().to_string(),
                        OpenLoopSession::new(SlamPipeline::new(mk_cfg(algo), &ds), rx),
                    )
                })
                .collect();
            Serve::builder().threads(4).ingest(&hub).run(sessions)
        })
    });
    group.finish();
}

/// Snapshot subsystem, full path: base-capture and restore throughput on
/// a churned mid-size map with pipeline-shaped side channels (Adam m/v at
/// width 14, mask at width 1).
fn bench_snapshot_full(c: &mut Criterion) {
    let mut group = c.benchmark_group("snapshot_full");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let (map, channels) = churned_snapshot_map(20_000);

    group.bench_function("capture_base", |b| {
        b.iter(|| {
            let mut log = CheckpointLog::new();
            log.capture(&map, &channels, b"session-meta").unwrap()
        })
    });

    let mut log = CheckpointLog::new();
    let _ = log.capture(&map, &channels, b"session-meta").unwrap();
    group.bench_function("restore", |b| b.iter(|| log.restore().unwrap()));
    group.finish();
}

/// Snapshot subsystem, incremental path: the cost of a dirty-shards-only
/// delta after sparse churn versus recapturing a full snapshot of the same
/// state, plus folding an 8-delta chain back into a base.
fn bench_snapshot_delta(c: &mut Criterion) {
    let mut group = c.benchmark_group("snapshot_delta");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let (mut map, channels) = churned_snapshot_map(20_000);

    // ~0.5% of the map mutates between checkpoints — a keyframe-scale
    // update touching a handful of shards.
    let mut log = CheckpointLog::new();
    let _ = log.capture(&map, &channels, b"m").unwrap();
    let mut tick = 0u32;
    group.bench_function("delta_after_sparse_churn", |b| {
        b.iter(|| {
            for k in 0..100u32 {
                let id = (tick.wrapping_mul(97).wrapping_add(k * 193)) % map.capacity() as u32;
                if map.is_live(id) {
                    map.gaussian_mut(id).opacity += 1e-4;
                }
            }
            tick = tick.wrapping_add(1);
            log.capture(&map, &channels, b"m").unwrap()
        })
    });

    group.bench_function("full_recapture_same_state", |b| {
        b.iter(|| {
            let mut fresh = CheckpointLog::new();
            fresh.capture(&map, &channels, b"m").unwrap()
        })
    });

    // An 8-delta chain folded into a new base.
    let mut chain = CheckpointLog::new();
    let _ = chain.capture(&map, &channels, b"m").unwrap();
    for round in 0..8u32 {
        for k in 0..100u32 {
            let id = (round.wrapping_mul(41).wrapping_add(k * 137)) % map.capacity() as u32;
            if map.is_live(id) {
                map.gaussian_mut(id).opacity += 1e-4;
            }
        }
        let _ = chain.capture(&map, &channels, b"m").unwrap();
    }
    group.bench_function("compact_chain_8", |b| {
        b.iter(|| {
            let mut log = chain.clone();
            log.compact().unwrap();
            log
        })
    });
    group.finish();
}

/// Replication subsystem: the steady-state cost of streaming one delta
/// record — capture + seal + send + follower validate/replay/ack — over
/// the in-process transport, against the capture-only baseline (the cost
/// a non-replicated checkpointing session already pays). Informational:
/// no gate keys on this group.
fn bench_replication_stream(c: &mut Criterion) {
    use rtgs_replicate::{duplex_pair, FaultPlan, Follower, ReplicationPolicy, Replicator};

    let mut group = c.benchmark_group("replication_stream");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let (mut map, channels) = churned_snapshot_map(20_000);

    let (a, b) = duplex_pair();
    let mut primary = Replicator::new(a, 7, ReplicationPolicy::new(), FaultPlan::lossless(1));
    let mut follower = Follower::new(b, 7);
    let mut frame = 0u64;
    primary
        .on_frame(frame, |log| log.capture(&map, &channels, b"m"))
        .unwrap();
    primary.pump().unwrap();
    follower.pump().unwrap();

    group.bench_function("delta_record_roundtrip", |b| {
        b.iter(|| {
            frame += 1;
            for k in 0..100u32 {
                let id =
                    (frame as u32).wrapping_mul(97).wrapping_add(k * 193) % map.capacity() as u32;
                if map.is_live(id) {
                    map.gaussian_mut(id).opacity += 1e-4;
                }
            }
            primary
                .on_frame(frame, |log| log.capture(&map, &channels, b"m"))
                .unwrap();
            primary.pump().unwrap();
            follower.pump().unwrap();
            primary.pump().unwrap(); // consume the ack
        })
    });

    let mut baseline = CheckpointLog::new();
    let _ = baseline.capture(&map, &channels, b"m").unwrap();
    let mut tick = 0u32;
    group.bench_function("capture_only_baseline", |b| {
        b.iter(|| {
            tick = tick.wrapping_add(1);
            for k in 0..100u32 {
                let id = tick.wrapping_mul(97).wrapping_add(k * 193) % map.capacity() as u32;
                if map.is_live(id) {
                    map.gaussian_mut(id).opacity += 1e-4;
                }
            }
            baseline.capture(&map, &channels, b"m").unwrap()
        })
    });
    group.finish();
}

/// Flight-recorder overhead: the per-frame costs the tracing/journal layer
/// adds to the instrumented hot path. `journal_append` and
/// `trace_ctx_stamp` price the two primitive probes; the `frame_probes_*`
/// pair measures the full per-frame probe sequence (mint a trace context,
/// record one journal event, emit one flow span) with recording on vs off
/// — the off cost is what every frame pays when the recorder is disabled,
/// and must stay negligible. Informational: no gate keys on this group.
fn bench_flight_recorder(c: &mut Criterion) {
    use rtgs_telemetry::{self as telemetry, EventKind, TraceCtx};
    use std::hint::black_box;

    let mut group = c.benchmark_group("flight_recorder");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(1));

    telemetry::set_journal_enabled(true);
    telemetry::warm_journal();
    telemetry::set_tracing_enabled(true);
    telemetry::warm_thread_ring();

    let mut seq = 0u64;
    group.bench_function("journal_append", |b| {
        b.iter(|| {
            seq += 1;
            telemetry::journal_record(EventKind::ShedDegrade, 0, black_box(seq | 1), seq, 2);
        })
    });

    group.bench_function("trace_ctx_stamp", |b| {
        b.iter(|| black_box(TraceCtx::fresh()))
    });

    // The per-frame probe sequence of the traced ingest/track path.
    let frame_probes = |frame: u64| {
        let trace = TraceCtx::fresh();
        telemetry::journal_record(EventKind::ShedDegrade, 0, trace.trace_id, frame, 2);
        telemetry::emit_flow_span(
            "bench.flight.frame",
            "flight",
            frame,
            1_000,
            frame,
            trace.trace_id,
            0,
        );
        black_box(trace.trace_id)
    };
    let mut frame = 0u64;
    group.bench_function("frame_probes_recording_on", |b| {
        b.iter(|| {
            frame += 1;
            frame_probes(frame)
        })
    });

    telemetry::set_journal_enabled(false);
    telemetry::set_tracing_enabled(false);
    group.bench_function("frame_probes_recording_off", |b| {
        b.iter(|| {
            frame += 1;
            frame_probes(frame)
        })
    });
    telemetry::clear_journal();
    telemetry::clear_spans();
    group.finish();
}

/// A mid-size sharded map grown through insert/tombstone/recycle churn,
/// with pipeline-shaped ID-keyed channels.
fn churned_snapshot_map(n: usize) -> (rtgs_render::ShardedScene, Vec<Channel>) {
    let mut map = rtgs_render::ShardedScene::new(0.5);
    for i in 0..n {
        let x = (i % 251) as f32 * 0.11 - 13.0;
        let y = ((i / 251) % 17) as f32 * 0.3 - 2.5;
        let z = 1.5 + ((i * 7) % 113) as f32 * 0.09;
        map.insert(rtgs_render::Gaussian3d::from_activated(
            rtgs_math::Vec3::new(x, y, z),
            rtgs_math::Vec3::splat(0.04),
            rtgs_math::Quat::IDENTITY,
            0.7,
            rtgs_math::Vec3::new(0.5, 0.4, 0.8),
        ));
    }
    for i in (0..n).step_by(9) {
        map.tombstone(i as u32);
    }
    for i in 0..n / 20 {
        map.insert(rtgs_render::Gaussian3d::from_activated(
            rtgs_math::Vec3::new(i as f32 * 0.2 - 10.0, 0.0, 2.0),
            rtgs_math::Vec3::splat(0.05),
            rtgs_math::Quat::IDENTITY,
            0.6,
            rtgs_math::Vec3::new(0.9, 0.3, 0.2),
        ));
    }
    let capacity = map.capacity();
    let channels = vec![
        Channel::zeroed("adam.m", 14, capacity),
        Channel::zeroed("adam.v", 14, capacity),
        Channel::zeroed("mask", 1, capacity),
    ];
    (map, channels)
}

criterion_group!(
    benches,
    bench_render_kernels,
    bench_soa_vs_aos,
    bench_fused_tile_pass,
    bench_table2_baseline_slams,
    bench_table6_rtgs_algorithm,
    bench_fig15_hardware_models,
    bench_fig17_ablation,
    bench_pruning_overhead,
    bench_config_layer,
    bench_tile_sort,
    bench_tracking_iteration,
    bench_tracking_iteration_steady_state,
    bench_large_scene_scaling,
    bench_runtime_scaling,
    bench_session_serving,
    bench_loadgen,
    bench_snapshot_full,
    bench_snapshot_delta,
    bench_replication_stream,
    bench_flight_recorder,
);
criterion_main!(benches);
