//! Persistence-subsystem experiment (not a paper artifact): crash/restore
//! continuity through incremental checkpoints, and hibernate-under-load
//! serving with an eviction budget.

use crate::common::{f, slam_config, Scale, Table};
use rtgs_runtime::{EvictionPolicy, Serve};
use rtgs_scene::{DatasetProfile, SyntheticDataset};
use rtgs_slam::{BaseAlgorithm, SlamPipeline};
use rtgs_snapshot::CheckpointLog;
use std::time::Instant;

/// Crash/restore: a session checkpoints incrementally after every frame,
/// "crashes" mid-run (the process state is dropped; only the log
/// survives), restores from base + deltas and finishes — with a
/// trajectory and rendering fidelity identical to a run that never died.
/// Then hibernate-under-load: more tenants than the residency budget, so
/// the scheduler parks cold sessions on disk mid-serve, with reports
/// identical to staying resident.
pub fn persistence(scale: Scale) -> String {
    let ds =
        SyntheticDataset::generate(scale.profile(DatasetProfile::tum_analog()), scale.frames());
    let cfg = slam_config(BaseAlgorithm::GsSlam, scale, false);
    let crash_at = scale.frames() / 2;

    // -- Part 1: checkpoint every frame, crash, restore, continue --------
    let mut log = CheckpointLog::new();
    let mut doomed = SlamPipeline::new(cfg, &ds);
    let mut table = Table::new(&[
        "frame",
        "capture",
        "shards written",
        "total shards",
        "bytes",
    ]);
    for frame in 0..crash_at {
        doomed.step();
        let stats = doomed.checkpoint_into(&mut log).expect("checkpoint");
        table.row(vec![
            frame.to_string(),
            if stats.is_base { "base" } else { "delta" }.into(),
            stats.shards_written.to_string(),
            stats.total_shards.to_string(),
            stats.bytes.to_string(),
        ]);
    }
    let log_bytes = log.total_bytes();
    drop(doomed); // the crash: only the checkpoint log survives.

    let t0 = Instant::now();
    let mut restored = SlamPipeline::restore_from(cfg, &ds, &log).expect("restore");
    let restore_wall = t0.elapsed();
    while restored.step().is_some() {}
    let restored_report = restored.report();

    let reference = SlamPipeline::new(cfg, &ds).run();
    let trajectory_identical = reference.trajectory.len() == restored_report.trajectory.len()
        && reference
            .trajectory
            .iter()
            .zip(restored_report.trajectory.iter())
            .all(|(a, b)| a.translation == b.translation && a.rotation == b.rotation);
    let psnr_identical = reference.mean_psnr == restored_report.mean_psnr;

    // Compaction folds the delta chain into one base, byte-identical to a
    // full snapshot of the final pre-crash state.
    let mut compacted = log.clone();
    compacted.compact().expect("compaction");

    let mut out = format!(
        "Crash/restore on {} ({} frames, crash after {crash_at}):\n{}\n\
         checkpoint log: {} captures, {log_bytes} bytes total, \
         {} bytes after compaction\n\
         restore wall: {} ms\n\
         trajectory identical to uninterrupted run: {trajectory_identical}\n\
         PSNR identical to uninterrupted run: {psnr_identical} \
         ({} dB)\n",
        ds.profile.name,
        scale.frames(),
        table.render(),
        log.delta_count() + 1,
        compacted.total_bytes(),
        f(restore_wall.as_secs_f64() * 1e3, 2),
        f(restored_report.mean_psnr, 2),
    );

    // -- Part 2: hibernate under load ------------------------------------
    let algos = [
        BaseAlgorithm::GsSlam,
        BaseAlgorithm::MonoGs,
        BaseAlgorithm::SplaTam,
        BaseAlgorithm::PhotoSlam,
    ];
    let build = |ds| {
        algos
            .iter()
            .map(|&algo| {
                (
                    algo.name().to_string(),
                    SlamPipeline::new(slam_config(algo, scale, false), ds),
                )
            })
            .collect::<Vec<_>>()
    };
    let resident = Serve::builder().threads(2).run(build(&ds));
    let spill = std::env::temp_dir().join(format!("rtgs-persistence-{}", std::process::id()));
    let policy = EvictionPolicy::new(spill).with_max_resident_sessions(2);
    let t1 = Instant::now();
    let evicted = Serve::builder().threads(2).eviction(policy).run(build(&ds));
    let evicted_wall = t1.elapsed();

    let mut table = Table::new(&[
        "session",
        "frames",
        "hibernations",
        "ATE (cm)",
        "identical to resident",
    ]);
    let mut hibernations = 0usize;
    for (a, b) in resident.iter().zip(evicted.iter()) {
        hibernations += b.stats.hibernations;
        let identical = a.report.frames_processed == b.report.frames_processed
            && a.report
                .trajectory
                .iter()
                .zip(b.report.trajectory.iter())
                .all(|(pa, pb)| pa.translation == pb.translation && pa.rotation == pb.rotation)
            && a.report.mean_psnr == b.report.mean_psnr;
        table.row(vec![
            b.stats.label.clone(),
            b.report.frames_processed.to_string(),
            b.stats.hibernations.to_string(),
            f(b.report.ate.rmse * 100.0, 2),
            identical.to_string(),
        ]);
    }
    out.push_str(&format!(
        "\nHibernate under load: {} sessions, 2-resident budget, \
         {hibernations} hibernations, {} s wall:\n{}",
        algos.len(),
        f(evicted_wall.as_secs_f64(), 2),
        table.render()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn persistence_restores_and_hibernates_identically() {
        let out = persistence(Scale::Quick);
        assert!(out.contains("trajectory identical to uninterrupted run: true"));
        assert!(out.contains("PSNR identical to uninterrupted run: true"));
        assert!(!out.contains("false"), "{out}");
        assert!(!out.contains(" 0 hibernations"), "{out}");
    }
}
