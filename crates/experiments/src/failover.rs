//! Replication/failover experiment (not a paper artifact): kill the
//! primary mid-trajectory under injected transport faults, promote the
//! warm standby, and verify the continuation is bitwise-identical to a
//! run that never crashed.

use crate::common::{f, slam_config, Scale, Table};
use rtgs_replicate::{
    duplex_pair, FaultPlan, Follower, ReplicatedSession, ReplicationPolicy, Replicator,
};
use rtgs_runtime::{ReplicationOptions, Serve};
use rtgs_scene::{DatasetProfile, SyntheticDataset};
use rtgs_slam::{config_fingerprint, BaseAlgorithm, SlamPipeline};
use rtgs_telemetry as telemetry;
use std::time::Duration;

/// Live replication and crash failover: a primary streams its checkpoint
/// delta log to a warm standby over a faulty transport (seeded drops,
/// duplicates, truncation, corruption, delays), dies at the planned
/// frame, and the standby takes over — with trajectory and rendering
/// fidelity identical to an uninterrupted run. Then a replicated serving
/// fleet drains its streams on shutdown so frame accounting balances.
pub fn failover(scale: Scale) -> String {
    let ds =
        SyntheticDataset::generate(scale.profile(DatasetProfile::tum_analog()), scale.frames());
    let cfg = slam_config(BaseAlgorithm::GsSlam, scale, false);
    let fingerprint = config_fingerprint(&cfg);
    let kill_at = (scale.frames() / 2) as u64;
    let plan = FaultPlan::chaos(4242).with_kill_primary_at_frame(kill_at);

    // -- Part 1: replicate under chaos, kill the primary, promote --------
    let (primary_link, follower_link) = duplex_pair();
    let mut replicator = Replicator::new(
        primary_link,
        fingerprint,
        ReplicationPolicy::new().with_retransmit_after(2),
        plan.clone(),
    );
    let mut follower = Follower::new(follower_link, fingerprint);
    let mut doomed = SlamPipeline::new(cfg, &ds);

    let kill_frame = plan.kill_primary_at_frame.expect("drill is armed");
    while let Some(frame) = doomed.step() {
        replicator
            .on_frame(frame as u64, |log| doomed.checkpoint_into(log))
            .expect("replication capture");
        replicator.pump().expect("primary pump");
        follower.pump().expect("follower pump");
        if frame as u64 + 1 >= kill_frame {
            break;
        }
    }
    let stream = replicator.stats();
    let faults = replicator.fault_stats();
    // The crash: primary process state and its replicator vanish; only
    // what already reached the follower's side of the link survives.
    drop(doomed);
    drop(replicator);
    follower.pump().expect("post-crash drain");

    let applied = follower.records_applied();
    let lag_at_crash = stream.frames_behind;
    let (mut promoted, takeover) = follower.promote(cfg, &ds).expect("promote the standby");
    while promoted.step().is_some() {}
    let promoted_report = promoted.report();

    let reference = SlamPipeline::new(cfg, &ds).run();
    let trajectory_identical = reference.trajectory.len() == promoted_report.trajectory.len()
        && reference
            .trajectory
            .iter()
            .zip(promoted_report.trajectory.iter())
            .all(|(a, b)| a.translation == b.translation && a.rotation == b.rotation);
    let psnr_identical = reference.mean_psnr == promoted_report.mean_psnr;
    // Promotion replays one compacted base — bound it generously; the
    // point is "milliseconds, not minutes", printed exactly below.
    let takeover_bounded = takeover < Duration::from_secs(10);

    let snap = telemetry::global().snapshot();
    let failover_hist = snap.histogram("replicate.failover_ns");
    let lag_metrics_present = snap.gauge("replicate.frames_behind").is_some()
        && snap.gauge("replicate.bytes_queued").is_some()
        && failover_hist.as_ref().map_or(0, |h| h.count()) > 0;

    let mut table = Table::new(&["stream counter", "value"]);
    for (name, value) in [
        ("records sent", stream.records_sent),
        ("records acked", stream.records_acked),
        ("retransmits", stream.retransmits),
        ("resyncs (epoch bumps)", stream.resyncs),
        ("envelopes dropped", faults.dropped),
        ("envelopes duplicated", faults.duplicated),
        ("envelopes truncated", faults.truncated),
        ("envelopes corrupted", faults.corrupted),
        ("envelopes delayed", faults.delayed),
        ("records applied at standby", applied),
    ] {
        table.row(vec![name.into(), value.to_string()]);
    }

    let mut out = format!(
        "Failover drill on {} ({} frames, primary killed after {kill_frame}, \
         seeded chaos faults):\n{}\n\
         follower lag at crash: {lag_at_crash} frames\n\
         time to takeover: {} ms (promotion replay of the standby)\n\
         time-to-takeover bounded: {takeover_bounded}\n\
         trajectory identical to uninterrupted run: {trajectory_identical}\n\
         PSNR identical to uninterrupted run: {psnr_identical} ({} dB)\n\
         follower-lag metrics in telemetry snapshot: {lag_metrics_present}\n",
        ds.profile.name,
        scale.frames(),
        table.render(),
        f(takeover.as_secs_f64() * 1e3, 2),
        f(promoted_report.mean_psnr, 2),
    );

    // -- Part 2: a replicated fleet drains its streams on shutdown -------
    let algos = [BaseAlgorithm::GsSlam, BaseAlgorithm::MonoGs];
    let mut sessions = Vec::new();
    let mut standbys = Vec::new();
    let mut stops = Vec::new();
    for (i, &algo) in algos.iter().enumerate() {
        let session_cfg = slam_config(algo, scale, false);
        let session_fp = config_fingerprint(&session_cfg);
        let (p_link, f_link) = duplex_pair();
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        stops.push(std::sync::Arc::clone(&stop));
        standbys.push(std::thread::spawn(move || {
            let mut follower = Follower::new(f_link, session_fp);
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                follower.pump().expect("fleet follower pump");
                std::thread::yield_now();
            }
        }));
        sessions.push((
            algo.name().to_string(),
            ReplicatedSession::new(
                SlamPipeline::new(session_cfg, &ds),
                Replicator::new(
                    p_link,
                    session_fp,
                    ReplicationPolicy::new().with_retransmit_after(2),
                    FaultPlan::chaos(100 + i as u64),
                ),
            ),
        ));
    }
    let outcomes = Serve::builder()
        .threads(2)
        .replicate(ReplicationOptions::new())
        .run(sessions);
    for stop in &stops {
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
    }
    for handle in standbys {
        handle.join().expect("fleet follower thread");
    }

    let mut table = Table::new(&[
        "session",
        "frames",
        "replicated",
        "dropped by policy",
        "behind",
        "accounting balances",
    ]);
    let mut all_balance = true;
    for outcome in &outcomes {
        let r = outcome.stats.replication.expect("replication stats");
        let balances = outcome.stats.steps as u64
            == r.frames_replicated + r.frames_dropped_by_policy
            && r.frames_behind == 0;
        all_balance &= balances;
        table.row(vec![
            outcome.stats.label.clone(),
            outcome.stats.steps.to_string(),
            r.frames_replicated.to_string(),
            r.frames_dropped_by_policy.to_string(),
            r.frames_behind.to_string(),
            balances.to_string(),
        ]);
    }
    out.push_str(&format!(
        "\nReplicated fleet drain ({} sessions under chaos faults):\n{}\
         frames_processed == frames_replicated + frames_dropped_by_policy \
         across the fleet: {all_balance}\n",
        algos.len(),
        table.render()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failover_continuation_is_bitwise_identical() {
        let out = failover(Scale::Quick);
        assert!(out.contains("trajectory identical to uninterrupted run: true"));
        assert!(out.contains("PSNR identical to uninterrupted run: true"));
        assert!(out.contains("time-to-takeover bounded: true"));
        assert!(out.contains("follower-lag metrics in telemetry snapshot: true"));
        assert!(out.contains("across the fleet: true"));
        assert!(!out.contains("false"), "{out}");
    }
}
