//! Algorithm-side experiments: Tab. 2 (base algorithm comparison), Tab. 6
//! (main algorithm results), Tab. 7 (GauSPU comparison), Fig. 13
//! (precision baselines + drift) and Fig. 14 (pruning ablations).

use crate::common::{dataset, f, run_variant, slam_config, to_workload, Scale, Table, Variant};
use rtgs_accel::{simulate_run, HardwareModel};
use rtgs_baselines::{BaselineExtension, FlashGsPruner, LightGaussianPruner};
use rtgs_core::{PruningConfig, RtgsConfig};
use rtgs_metrics::per_frame_errors;
use rtgs_scene::DatasetProfile;
use rtgs_slam::{BaseAlgorithm, SlamPipeline};

/// Tab. 2: accuracy / speed / storage of the four base 3DGS-SLAM
/// algorithms on the Replica analog, with hardware FPS modeled on the ONX.
pub fn table2(scale: Scale) -> String {
    let ds = dataset(
        scale.profile(DatasetProfile::replica_analog()),
        scale.frames(),
    );
    let mut out = String::from("Tab. 2: base 3DGS-SLAM algorithms on Replica-analog (ONX model)\n");
    let mut table = Table::new(&[
        "algorithm",
        "ATE(cm)",
        "PSNR(dB)",
        "trackFPS",
        "overallFPS",
        "peakMem(MB)",
        "mono",
    ]);
    for algo in BaseAlgorithm::all() {
        let report = run_variant(algo, &ds, scale, Variant::Base, true);
        let cost = simulate_run(&to_workload(&report), &HardwareModel::onx(), true);
        table.row(vec![
            algo.name().into(),
            f(report.ate.rmse_cm(), 2),
            f(report.mean_psnr, 2),
            f(cost.tracking_fps, 2),
            f(cost.overall_fps, 2),
            f(report.peak_param_bytes as f64 / 1e6, 2),
            if algo.geometric_tracking() || algo == BaseAlgorithm::MonoGs {
                "yes".into()
            } else {
                "no".into()
            },
        ]);
    }
    out.push_str(&table.render());
    out.push_str("\nExpected shape (paper Tab. 2): SplaTAM slowest overall; Photo-SLAM fastest;\nMonoGS most accurate with the largest map.\n");
    out
}

/// Tab. 6: the main algorithm comparison — 3 base algorithms × 4 datasets
/// × {base, Taming 3DGS, Ours}.
pub fn table6(scale: Scale) -> String {
    let mut out =
        String::from("Tab. 6: algorithm variants across datasets (wall-clock on this CPU)\n");
    let mut table = Table::new(&[
        "method",
        "dataset",
        "ATE(cm)",
        "PSNR(dB)",
        "relFPS",
        "peakMem(MB)",
    ]);
    for profile in DatasetProfile::all_analogs() {
        let ds = dataset(scale.profile(profile), scale.frames());
        for algo in BaseAlgorithm::keyframe_based() {
            let mut base_fps = 0.0;
            for variant in [Variant::Base, Variant::Taming, Variant::Ours] {
                let report = run_variant(algo, &ds, scale, variant, false);
                let fps = report.overall_fps();
                if variant == Variant::Base {
                    base_fps = fps;
                }
                table.row(vec![
                    variant.label(algo),
                    ds.profile.name.clone(),
                    f(report.ate.rmse_cm(), 2),
                    f(report.mean_psnr, 2),
                    f(if base_fps > 0.0 { fps / base_fps } else { 1.0 }, 2) + "x",
                    f(report.peak_param_bytes as f64 / 1e6, 2),
                ]);
            }
        }
    }
    out.push_str(&table.render());
    out.push_str("\nExpected shape (paper Tab. 6): Ours ~2.5-3.6x base FPS with <~10% ATE/PSNR\ndegradation and lower memory; Taming 3DGS trades more quality for less gain\n(its scores cannot converge within SLAM's iteration budget).\n");
    out
}

/// Tab. 7: SplaTAM on the RTX 3090, base vs GauSPU vs Ours.
pub fn table7(scale: Scale) -> String {
    let ds = dataset(
        scale.profile(DatasetProfile::replica_analog()),
        scale.frames(),
    );
    let base = run_variant(BaseAlgorithm::SplaTam, &ds, scale, Variant::Base, true);
    let ours = run_variant(BaseAlgorithm::SplaTam, &ds, scale, Variant::Ours, true);

    let base_run = to_workload(&base);
    let ours_run = to_workload(&ours);
    let rtx = simulate_run(&base_run, &HardwareModel::rtx3090(), true);
    let gauspu = simulate_run(&base_run, &HardwareModel::gauspu(), true);
    let ours_hw = simulate_run(&ours_run, &HardwareModel::rtgs_on_rtx3090(), true);

    let mut out = String::from("Tab. 7: SplaTAM on RTX 3090 — base vs GauSPU vs Ours\n");
    let mut table = Table::new(&[
        "method",
        "ATE(cm)",
        "PSNR(dB)",
        "trackFPS",
        "overallFPS",
        "peakMem(MB)",
    ]);
    table.row(vec![
        "SplaTAM".into(),
        f(base.ate.rmse_cm(), 2),
        f(base.mean_psnr, 2),
        f(rtx.tracking_fps, 1),
        f(rtx.overall_fps, 1),
        f(base.peak_param_bytes as f64 / 1e6, 2),
    ]);
    table.row(vec![
        "GauSPU + SplaTAM".into(),
        f(base.ate.rmse_cm(), 2),
        f(base.mean_psnr, 2),
        f(gauspu.tracking_fps, 1),
        f(gauspu.overall_fps, 1),
        f(base.peak_param_bytes as f64 / 1e6, 2),
    ]);
    table.row(vec![
        "Ours + SplaTAM".into(),
        f(ours.ate.rmse_cm(), 2),
        f(ours.mean_psnr, 2),
        f(ours_hw.tracking_fps, 1),
        f(ours_hw.overall_fps, 1),
        f(ours.peak_param_bytes as f64 / 1e6, 2),
    ]);
    out.push_str(&table.render());
    out.push_str("\nExpected shape (paper Tab. 7): Ours reaches the highest FPS with the lowest\npeak memory at comparable quality.\n");
    out
}

/// Fig. 13: (a) accuracy/efficiency trade-off against precision-oriented
/// pruners at a 50% ratio; (b) cumulative drift for pruning ratios.
pub fn fig13(scale: Scale) -> String {
    let ds = dataset(
        scale.profile(DatasetProfile::replica_analog()),
        scale.frames(),
    );
    let mut out =
        String::from("Fig. 13(a): 50% pruning — quality vs throughput vs evaluation cost\n");
    let mut table = Table::new(&["method", "ATE(cm)", "relFPS", "eval overhead (ops)"]);

    let base = run_variant(BaseAlgorithm::MonoGs, &ds, scale, Variant::Base, false);
    let base_fps = base.overall_fps();
    table.row(vec![
        "Baseline (no pruning)".into(),
        f(base.ate.rmse_cm(), 2),
        "1.00x".into(),
        "0".into(),
    ]);

    let cfg = slam_config(BaseAlgorithm::MonoGs, scale, false);
    // LightGaussian-style
    {
        let ext = BaselineExtension::new(LightGaussianPruner::new(), 0.5);
        let mut pipe = SlamPipeline::with_extension(cfg, &ds, Box::new(ext));
        let report = pipe.run();
        table.row(vec![
            "LightGaussian".into(),
            f(report.ate.rmse_cm(), 2),
            f(report.overall_fps() / base_fps, 2) + "x",
            "high (global score pass)".into(),
        ]);
    }
    // FlashGS-style
    {
        let ext = BaselineExtension::new(FlashGsPruner::new(), 0.5);
        let mut pipe = SlamPipeline::with_extension(cfg, &ds, Box::new(ext));
        let report = pipe.run();
        table.row(vec![
            "FlashGS".into(),
            f(report.ate.rmse_cm(), 2),
            f(report.overall_fps() / base_fps, 2) + "x",
            "highest (saliency pass)".into(),
        ]);
    }
    // RTGS
    {
        let ours = run_variant(BaseAlgorithm::MonoGs, &ds, scale, Variant::Ours, false);
        table.row(vec![
            "RTGS Algo (ours)".into(),
            f(ours.ate.rmse_cm(), 2),
            f(ours.overall_fps() / base_fps, 2) + "x",
            "zero (gradients reused)".into(),
        ]);
    }
    out.push_str(&table.render());

    out.push_str("\nFig. 13(b): cumulative drift over frames by pruning ratio\n");
    let mut table = Table::new(&["prune ratio", "ATE(cm)", "final-frame error (cm)"]);
    for ratio in [0.0f32, 0.25, 0.5, 0.8] {
        let report = if ratio == 0.0 {
            run_variant(BaseAlgorithm::MonoGs, &ds, scale, Variant::Base, false)
        } else {
            let rtgs = RtgsConfig {
                pruning: Some(PruningConfig {
                    max_prune_ratio: ratio,
                    prune_step_fraction: (ratio / 2.0).max(0.1),
                    ..Default::default()
                }),
                downsampling: None,
            };
            SlamPipeline::with_extension(
                slam_config(BaseAlgorithm::MonoGs, scale, false),
                &ds,
                rtgs.into_extension(),
            )
            .run()
        };
        let errors = per_frame_errors(&report.trajectory, &ds.poses_c2w[..report.trajectory.len()]);
        table.row(vec![
            format!("{:.0}%", ratio * 100.0),
            f(report.ate.rmse_cm(), 2),
            f(errors.last().copied().unwrap_or(0.0) * 100.0, 2),
        ]);
    }
    out.push_str(&table.render());
    out.push_str("\nExpected shape (paper Fig. 13/14a): drift comparable to baseline up to 50%\npruning, rising sharply beyond.\n");
    out
}

/// Fig. 14: (a) ATE and latency versus pruning ratio; (b) forward/backward
/// speedup attribution of the two algorithm techniques.
pub fn fig14(scale: Scale) -> String {
    let ds = dataset(
        scale.profile(DatasetProfile::replica_analog()),
        scale.frames(),
    );
    let mut out = String::from("Fig. 14(a): pruning-ratio sweep (MonoGS, Replica-analog)\n");
    let mut table = Table::new(&["prune ratio", "ATE(cm)", "latency/frame (ms)"]);
    for ratio in [0.0f32, 0.15, 0.3, 0.5, 0.7] {
        let report = if ratio == 0.0 {
            run_variant(BaseAlgorithm::MonoGs, &ds, scale, Variant::Base, false)
        } else {
            let rtgs = RtgsConfig {
                pruning: Some(PruningConfig {
                    max_prune_ratio: ratio,
                    prune_step_fraction: (ratio / 2.0).max(0.1),
                    ..Default::default()
                }),
                downsampling: None,
            };
            SlamPipeline::with_extension(
                slam_config(BaseAlgorithm::MonoGs, scale, false),
                &ds,
                rtgs.into_extension(),
            )
            .run()
        };
        table.row(vec![
            format!("{:.0}%", ratio * 100.0),
            f(report.ate.rmse_cm(), 2),
            f(
                report.total_wall.as_secs_f64() * 1000.0 / report.frames_processed.max(1) as f64,
                1,
            ),
        ]);
    }
    out.push_str(&table.render());

    out.push_str("\nFig. 14(b): forward/backward work reduction by technique (fragment counts)\n");
    let mut table = Table::new(&["technique", "FF speedup", "BP speedup"]);
    let frag_ff = |r: &rtgs_slam::SlamReport| -> f64 {
        r.frames
            .iter()
            .map(|fr| fr.tracking_fragments as f64)
            .sum::<f64>()
            .max(1.0)
    };
    let frag_bp = |r: &rtgs_slam::SlamReport| -> f64 {
        r.frames
            .iter()
            .map(|fr| fr.tracking_grad_events as f64)
            .sum::<f64>()
            .max(1.0)
    };
    let base = run_variant(BaseAlgorithm::MonoGs, &ds, scale, Variant::Base, false);
    for (name, rtgs) in [
        ("adaptive pruning", RtgsConfig::pruning_only()),
        ("dynamic downsampling", RtgsConfig::downsampling_only()),
        ("both", RtgsConfig::full()),
    ] {
        let report = SlamPipeline::with_extension(
            slam_config(BaseAlgorithm::MonoGs, scale, false),
            &ds,
            rtgs.into_extension(),
        )
        .run();
        table.row(vec![
            name.into(),
            f(frag_ff(&base) / frag_ff(&report), 2) + "x",
            f(frag_bp(&base) / frag_bp(&report), 2) + "x",
        ]);
    }
    out.push_str(&table.render());
    out.push_str("\nPaper reference (Fig. 14b): pruning 1.53x FF / 1.7x BP;\ndownsampling 2.1x FF / 1.9x BP.\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_contains_all_algorithms() {
        let out = table2(Scale::Quick);
        for name in ["SplaTAM", "GS-SLAM", "MonoGS", "Photo-SLAM"] {
            assert!(out.contains(name), "missing {name} in:\n{out}");
        }
    }
}
