//! Profiling experiments: Fig. 3 (latency breakdown), Fig. 4 (gradient
//! distribution), Fig. 5 (inter-frame similarity) and Fig. 6 (per-pixel
//! workload distributions) — Sec. 3 of the paper.

use crate::common::{dataset, f, run_variant, Scale, Table, Variant};
use rtgs_metrics::{rmse, ssim};
use rtgs_scene::DatasetProfile;
use rtgs_slam::BaseAlgorithm;

/// Fig. 3: latency breakdown of the SLAM pipeline.
///
/// (a) per-stage share of total runtime for the three keyframe algorithms
/// on TUM- and ScanNet-analogs; (b) per-step share within tracking and
/// mapping for MonoGS.
pub fn fig3(scale: Scale) -> String {
    let mut out = String::from("Fig. 3(a): stage share of total runtime (percent)\n");
    let mut table = Table::new(&["algorithm", "dataset", "tracking%", "mapping%", "other%"]);
    for profile in [
        DatasetProfile::tum_analog(),
        DatasetProfile::scannet_analog(),
    ] {
        let ds = dataset(scale.profile(profile), scale.frames());
        for algo in BaseAlgorithm::keyframe_based() {
            let report = run_variant(algo, &ds, scale, Variant::Base, false);
            let total = report.total_wall.as_secs_f64().max(1e-12);
            let tracking = report.tracking_wall.as_secs_f64() / total * 100.0;
            let mapping = report.mapping_wall.as_secs_f64() / total * 100.0;
            table.row(vec![
                algo.name().into(),
                ds.profile.name.clone(),
                f(tracking, 1),
                f(mapping, 1),
                f((100.0 - tracking - mapping).max(0.0), 1),
            ]);
        }
    }
    out.push_str(&table.render());

    out.push_str("\nFig. 3(b): per-step share within MonoGS tracking/mapping (percent)\n");
    let ds = dataset(scale.profile(DatasetProfile::tum_analog()), scale.frames());
    let report = run_variant(BaseAlgorithm::MonoGs, &ds, scale, Variant::Base, false);
    let mut table = Table::new(&[
        "stage",
        "preprocess%",
        "sorting%",
        "render%",
        "render_bp%",
        "preprocess_bp%",
        "other%",
    ]);
    for (name, t) in [
        ("tracking", report.tracking_timings),
        ("mapping", report.mapping_timings),
    ] {
        let shares = t.shares();
        let mut row = vec![name.to_string()];
        row.extend(shares.iter().map(|s| f(s * 100.0, 1)));
        table.row(row);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nPaper reference (Fig. 3b, tracking): rendering 33%, rendering BP 53%,\n\
         preprocessing 3%, sorting 6%, preprocessing BP 5%.\n",
    );
    out
}

/// Fig. 4: Gaussian gradient (importance) distribution during tracking.
///
/// Reports what fraction of the total importance mass the top-k% most
/// important Gaussians carry; the paper finds the top 14% carry the
/// majority.
pub fn fig4(scale: Scale) -> String {
    let ds = dataset(scale.profile(DatasetProfile::tum_analog()), scale.frames());
    // Accumulate per-Gaussian importance over the base run's tracking.
    use rtgs_slam::{track_frame, StageNanos, TrackingConfig};
    let report = run_variant(BaseAlgorithm::MonoGs, &ds, scale, Variant::Base, false);
    // Re-track the last frame against the final map, collecting gradients.
    let map = {
        // Rebuild via a short pipeline run is costly; instead track frame 1
        // against the reference scene (the distribution shape is a property
        // of the scene structure).
        rtgs_render::ShardedScene::from_scene(&ds.reference_scene, 1.0)
    };
    let mut mask = vec![true; map.capacity()];
    let mut timings = StageNanos::default();
    let mut scores = vec![0.0f64; map.capacity()];
    struct Collect<'a> {
        scores: &'a mut Vec<f64>,
    }
    impl rtgs_slam::TrackingObserver for Collect<'_> {
        fn after_iteration(
            &mut self,
            artifacts: &rtgs_slam::IterationArtifacts<'_>,
            _mask: &mut [bool],
        ) {
            for (k, g) in artifacts.grads.gaussians.iter().enumerate() {
                let id = artifacts.visible_ids[k] as usize;
                self.scores[id] += g.importance_score(0.8) as f64;
            }
        }
    }
    let mut observer = Collect {
        scores: &mut scores,
    };
    let _ = track_frame(
        &map,
        ds.poses_c2w[1].inverse(),
        &ds.frames[1],
        &ds.camera,
        &TrackingConfig {
            iterations: scale.tracking_iters(),
            ..Default::default()
        },
        &mut mask,
        &mut observer,
        &mut timings,
    );

    let mut sorted = scores.clone();
    sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
    let total: f64 = sorted.iter().sum::<f64>().max(1e-12);
    let mut out = String::from("Fig. 4: Gaussian importance distribution during tracking\n");
    let mut table = Table::new(&["top-k% Gaussians", "share of importance mass"]);
    for pct in [5usize, 10, 14, 25, 50] {
        let k = (sorted.len() * pct / 100).max(1);
        let mass: f64 = sorted[..k].iter().sum();
        table.row(vec![format!("{pct}%"), f(mass / total * 100.0, 1) + "%"]);
    }
    table.row(vec![
        "(paper: top 14% carry the majority)".into(),
        String::new(),
    ]);
    out.push_str(&table.render());
    let _ = report;
    out
}

/// Fig. 5: pixel-wise (RMSE) and structural (SSIM) similarity of
/// consecutive frames, with keyframe positions marked.
pub fn fig5(scale: Scale) -> String {
    let frames = scale.frames().max(8);
    let ds = dataset(scale.profile(DatasetProfile::tum_analog()), frames);
    let report = run_variant(BaseAlgorithm::MonoGs, &ds, scale, Variant::Base, false);
    let keyframes: Vec<usize> = report
        .frames
        .iter()
        .filter(|fr| fr.is_keyframe)
        .map(|fr| fr.index)
        .collect();

    let mut out = String::from("Fig. 5: similarity of consecutive frames\n");
    let mut table = Table::new(&["frame", "RMSE vs prev", "SSIM vs prev", "keyframe"]);
    for i in 1..ds.len() {
        let a = &ds.frames[i - 1].color;
        let b = &ds.frames[i].color;
        table.row(vec![
            i.to_string(),
            f(rmse(a, b) * 100.0, 2) + " (x100)",
            f(ssim(a, b), 4),
            if keyframes.contains(&i) {
                "KF".into()
            } else {
                String::new()
            },
        ]);
    }
    out.push_str(&table.render());
    out.push_str("\nExpected shape: high SSIM / low RMSE between consecutive non-keyframes\n(Observation 5: non-keyframe content is highly redundant).\n");
    out
}

/// Fig. 6: per-pixel workload distributions across frames and across
/// iterations within one frame.
pub fn fig6(scale: Scale) -> String {
    let ds = dataset(scale.profile(DatasetProfile::tum_analog()), scale.frames());
    let report = run_variant(BaseAlgorithm::MonoGs, &ds, scale, Variant::Base, true);
    let edges = [2u32, 10, 50, 200];

    let mut out = String::from(
        "Fig. 6 (top): workload distribution across frames (pixel counts per bucket)\n",
    );
    let mut table = Table::new(&["frame", "<2", "2-9", "10-49", "50-199", ">=200", "mean w"]);
    for fr in report.frames.iter().filter(|fr| !fr.traces.is_empty()) {
        let t = &fr.traces[0];
        let h = t.workload_histogram(&edges);
        let mut row = vec![fr.index.to_string()];
        row.extend(h.iter().map(|c| c.to_string()));
        row.push(f(t.mean_pixel_workload(), 1));
        table.row(row);
    }
    out.push_str(&table.render());

    out.push_str("\nFig. 6 (bottom): distribution across iterations within one frame\n");
    let mut table = Table::new(&[
        "iteration",
        "<2",
        "2-9",
        "10-49",
        "50-199",
        ">=200",
        "similarity to prev",
    ]);
    if let Some(fr) = report.frames.iter().find(|fr| fr.traces.len() > 2) {
        for (i, t) in fr.traces.iter().enumerate() {
            let h = t.workload_histogram(&edges);
            let mut row = vec![i.to_string()];
            row.extend(h.iter().map(|c| c.to_string()));
            row.push(if i == 0 {
                "-".into()
            } else {
                f(1.0 - t.workload_similarity(&fr.traces[i - 1]), 3)
            });
            table.row(row);
        }
    }
    out.push_str(&table.render());
    out.push_str("\nExpected shape: distributions vary across frames but stay nearly identical\nacross iterations (Observation 6) — the WSU reuses the schedule.\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_distribution_is_skewed() {
        let out = fig4(Scale::Quick);
        assert!(out.contains("14%"));
    }

    #[test]
    fn fig5_reports_rows() {
        let out = fig5(Scale::Quick);
        assert!(out.contains("SSIM"));
        assert!(out.lines().count() > 6);
    }
}
