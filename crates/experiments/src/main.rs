//! Experiment runner binary.
//!
//! ```bash
//! experiments <name>|all [--full]
//! ```

use rtgs_experiments::{run_experiment, Scale, EXPERIMENTS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--full") {
        Scale::Full
    } else {
        Scale::Quick
    };
    let names: Vec<&str> = match args.iter().find(|a| !a.starts_with("--")) {
        Some(name) if name == "all" => EXPERIMENTS.to_vec(),
        Some(name) => vec![name.as_str()],
        None => {
            eprintln!("usage: experiments <name>|all [--full]");
            eprintln!("experiments: {}", EXPERIMENTS.join(", "));
            std::process::exit(2);
        }
    };
    for name in names {
        println!("================ {name} ================");
        match run_experiment(name, scale) {
            Ok(out) => println!("{out}"),
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        }
    }
}
