//! Experiment runner binary.
//!
//! ```bash
//! experiments <name>|all [--full] [--parallel[=N]]
//! ```
//!
//! `--parallel` runs every SLAM configuration on the work-stealing parallel
//! backend (machine-sized pool, or `N` threads with `--parallel=N`);
//! results are bitwise-identical to serial runs.

use rtgs_experiments::{run_experiment, set_default_backend, Scale, EXPERIMENTS};
use rtgs_runtime::BackendChoice;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--full") {
        Scale::Full
    } else {
        Scale::Quick
    };
    if let Some(flag) = args
        .iter()
        .find(|a| *a == "--parallel" || a.starts_with("--parallel="))
    {
        let threads = match flag.strip_prefix("--parallel=") {
            Some(n) => n.parse::<usize>().unwrap_or_else(|_| {
                eprintln!("invalid thread count in `{flag}` (expected --parallel[=N])");
                std::process::exit(2);
            }),
            None => 0,
        };
        set_default_backend(BackendChoice::Parallel { threads });
    }
    let names: Vec<&str> = match args.iter().find(|a| !a.starts_with("--")) {
        Some(name) if name == "all" => EXPERIMENTS.to_vec(),
        Some(name) => vec![name.as_str()],
        None => {
            eprintln!("usage: experiments <name>|all [--full] [--parallel[=N]]");
            eprintln!("experiments: {}", EXPERIMENTS.join(", "));
            std::process::exit(2);
        }
    };
    for name in names {
        println!("================ {name} ================");
        match run_experiment(name, scale) {
            Ok(out) => println!("{out}"),
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        }
    }
}
