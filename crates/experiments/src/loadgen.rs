//! Open-loop load generator (runtime subsystem, not a paper artifact):
//! tenants stream frames at *their* rate into bounded inboxes and the
//! server either keeps up, sheds, or drowns. Three parts:
//!
//! 1. **Overload**: one tenant offering ~3× the measured service rate,
//!    served once with the shed stack (bounded inbox + drop-oldest + SLO
//!    degradation) and once with no shedding (unbounded inbox, always
//!    full-res). The shed run holds p99 inside the SLO; the no-shed run
//!    blows through it — queueing delay is unbounded under overload.
//! 2. **Mixed tenants**: steady Poisson, bursty, and slow tenants sharing
//!    one core; per-tenant sojourn quantiles and drop accounting.
//! 3. **Sessions-per-core**: how many tenants a single worker thread
//!    sustains at fixed aggregate utilization before p99 leaves the SLO.
//!
//! Sojourn = queueing + tracking, measured by the inbox from producer
//! `push` to `frame_done`. Quantiles come from the log-bucketed latency
//! histogram, so values are bucket lower bounds. Arrival schedules use a
//! seeded LCG — deterministic offered traffic; wall-clock latencies still
//! vary run to run (see CONTRIBUTING on SLO-bench noise).

use crate::common::{f, Scale, Table};
use rtgs_runtime::{IngestConfig, IngestHub, IngestStats, LatePolicy, Serve};
use rtgs_scene::{DatasetProfile, SyntheticDataset};
use rtgs_slam::{BaseAlgorithm, OpenLoopSession, SlamConfig, SlamPipeline, SloPolicy};
use std::time::{Duration, Instant};

/// Deterministic LCG (Numerical Recipes constants) for arrival schedules.
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Self {
        Self(
            seed.wrapping_mul(2862933555777941757)
                .wrapping_add(3037000493),
        )
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }

    /// Uniform in (0, 1].
    fn next_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64 + 1.0) / (1u64 << 53) as f64
    }

    /// Exponential inter-arrival with the given mean (Poisson process).
    fn exp(&mut self, mean: Duration) -> Duration {
        Duration::from_secs_f64(mean.as_secs_f64() * -self.next_f64().ln())
    }
}

fn loadgen_config(scale: Scale) -> SlamConfig {
    // MonoGS on the full-resolution TUM analog: the 40x30 camera is the
    // smallest that clears the resolution floor at degrade factor 2, so
    // shed mode actually cuts tracking work (keyframes stay full-res).
    let mut cfg = SlamConfig::for_algorithm(BaseAlgorithm::MonoGs);
    cfg.tracking.iterations = match scale {
        Scale::Quick => 6,
        Scale::Full => 10,
    };
    cfg.mapping_iterations = match scale {
        Scale::Quick => 4,
        Scale::Full => 8,
    };
    cfg
}

/// Median per-frame service time of the closed-loop pipeline under `cfg`.
fn calibrate_service(cfg: SlamConfig, ds: &SyntheticDataset) -> Duration {
    let mut pipeline = SlamPipeline::new(cfg, ds);
    let mut samples = Vec::new();
    while !pipeline.is_complete() {
        let t0 = Instant::now();
        if pipeline.step().is_none() {
            break;
        }
        samples.push(t0.elapsed());
    }
    samples.sort();
    samples
        .get(samples.len() / 2)
        .copied()
        .unwrap_or(Duration::from_millis(1))
}

/// One tenant's offered traffic: inter-arrival gaps, pushed by a
/// dedicated producer thread.
struct Tenant {
    label: String,
    gaps: Vec<Duration>,
}

impl Tenant {
    fn poisson(label: &str, seed: u64, mean_gap: Duration, frames: usize) -> Self {
        let mut rng = Lcg::new(seed);
        Self {
            label: label.to_string(),
            gaps: (0..frames).map(|_| rng.exp(mean_gap)).collect(),
        }
    }

    /// Bursts of `burst` back-to-back frames separated by `lull`.
    fn bursty(label: &str, burst: usize, lull: Duration, frames: usize) -> Self {
        Self {
            label: label.to_string(),
            gaps: (0..frames)
                .map(|i| if i % burst == 0 { lull } else { Duration::ZERO })
                .collect(),
        }
    }
}

/// Serves `tenants` open-loop on `threads` workers and returns per-tenant
/// ingest stats. Each tenant gets a fresh pipeline over `ds` and a
/// producer thread replaying its arrival schedule.
fn serve_tenants(
    cfg: SlamConfig,
    ds: &SyntheticDataset,
    ingest: IngestConfig,
    slo: Option<SloPolicy>,
    threads: usize,
    tenants: Vec<Tenant>,
) -> Vec<(String, IngestStats)> {
    let hub = IngestHub::new(ingest);
    let mut sessions = Vec::new();
    let mut producers = Vec::new();
    for tenant in tenants {
        let (tx, rx) = hub
            .channel::<()>()
            .expect("loadgen tenants stay within the admission budget");
        let mut session = OpenLoopSession::new(SlamPipeline::new(cfg, ds), rx);
        if let Some(slo) = &slo {
            session = session.with_slo(slo.clone());
        }
        sessions.push((tenant.label, session));
        producers.push(std::thread::spawn(move || {
            for gap in tenant.gaps {
                if !gap.is_zero() {
                    std::thread::sleep(gap);
                }
                // Last producer handle dropping closes the inbox.
                tx.push(());
            }
        }));
    }
    let outcomes = Serve::builder().threads(threads).ingest(&hub).run(sessions);
    for producer in producers {
        producer.join().expect("producer thread panicked");
    }
    outcomes
        .into_iter()
        .map(|o| {
            let stats = o
                .stats
                .ingest
                .expect("open-loop sessions always report ingest stats");
            (o.stats.label, stats)
        })
        .collect()
}

fn ms(ns: u64) -> String {
    f(ns as f64 / 1e6, 2)
}

/// Open-loop serving under overload: shed vs no-shed, mixed tenants, and
/// the sessions-per-core sweep. See the module docs for the scenario
/// definitions and the grep-able summary lines CI checks.
pub fn loadgen(scale: Scale) -> String {
    let frames = match scale {
        Scale::Quick => 18,
        Scale::Full => 36,
    };
    let cfg = loadgen_config(scale);
    let ds = SyntheticDataset::generate(DatasetProfile::tum_analog(), frames);
    let cal_ds = SyntheticDataset::generate(DatasetProfile::tum_analog(), 6);
    let service = calibrate_service(loadgen_config(scale).with_frames(6), &cal_ds);
    let slo_p99 = service * 6;
    let overload_gap = service / 3; // offered rate ~3x the service rate

    let slo = SloPolicy::new(slo_p99)
        .with_depth_high(2)
        .with_degrade_factor(2)
        .with_window(16);
    let mut out = format!(
        "Open-loop load generator (tum analog {}x{}, {} frames/tenant)\n\
         calibrated median service: {} ms; SLO p99 = 6x service = {} ms; \
         overload = 3x service rate\n\n",
        ds.camera.width,
        ds.camera.height,
        frames,
        f(service.as_secs_f64() * 1e3, 2),
        f(slo_p99.as_secs_f64() * 1e3, 2),
    );

    // Part 1 -- overload: shed stack vs no shedding, same Poisson trace.
    let mk_overload = || vec![Tenant::poisson("overload", 7, overload_gap, frames)];
    let shed_cfg = IngestConfig::new()
        .with_inbox_capacity(3)
        .with_late_policy(LatePolicy::DropOldest);
    let shed = &serve_tenants(cfg, &ds, shed_cfg, Some(slo.clone()), 1, mk_overload())[0].1;
    let noshed_cfg = IngestConfig::new().with_inbox_capacity(frames + 1);
    let noshed = &serve_tenants(cfg, &ds, noshed_cfg, None, 1, mk_overload())[0].1;

    let mut table = Table::new(&[
        "policy",
        "offered",
        "processed",
        "dropped",
        "drop rate",
        "degraded",
        "p50 (ms)",
        "p99 (ms)",
        "p999 (ms)",
    ]);
    for (name, s) in [("shed", shed), ("no-shed", noshed)] {
        table.row(vec![
            name.into(),
            s.offered.to_string(),
            s.processed.to_string(),
            s.dropped().to_string(),
            format!("{}%", f(s.drop_rate() * 100.0, 1)),
            s.degraded.to_string(),
            ms(s.latency.p50()),
            ms(s.latency.p99()),
            ms(s.latency.p999()),
        ]);
    }
    let slo_ns = slo_p99.as_nanos() as u64;
    out.push_str("Part 1 -- 3x overload, one tenant, one core:\n");
    out.push_str(&table.render());
    out.push_str(&format!(
        "shed holds SLO: {}\nno-shed exceeds SLO: {}\n\n",
        shed.latency.p99() <= slo_ns,
        noshed.latency.p99() > slo_ns,
    ));

    // Part 2 -- mixed tenant rates sharing one core, shed stack on.
    let mixed = serve_tenants(
        cfg,
        &ds,
        IngestConfig::new()
            .with_inbox_capacity(4)
            .with_late_policy(LatePolicy::DropOldest),
        Some(slo.clone()),
        1,
        vec![
            Tenant::poisson("steady", 11, service * 4, frames),
            Tenant::bursty("bursty", 3, service * 9, frames),
            Tenant::poisson("slow", 13, service * 6, frames / 2),
        ],
    );
    let mut table = Table::new(&[
        "tenant",
        "offered",
        "processed",
        "drop rate",
        "degraded",
        "p50 (ms)",
        "p99 (ms)",
        "p99 <= SLO",
    ]);
    let mut offered = 0u64;
    let mut dropped = 0u64;
    for (label, s) in &mixed {
        offered += s.offered;
        dropped += s.dropped();
        table.row(vec![
            label.clone(),
            s.offered.to_string(),
            s.processed.to_string(),
            format!("{}%", f(s.drop_rate() * 100.0, 1)),
            s.degraded.to_string(),
            ms(s.latency.p50()),
            ms(s.latency.p99()),
            (s.latency.p99() <= slo_ns).to_string(),
        ]);
    }
    out.push_str("Part 2 -- mixed tenants (Poisson + bursty + slow), one core:\n");
    out.push_str(&table.render());
    out.push_str(&format!(
        "drop rate: {}% ({} of {} offered)\n\n",
        f(
            if offered > 0 {
                dropped as f64 / offered as f64 * 100.0
            } else {
                0.0
            },
            1
        ),
        dropped,
        offered,
    ));

    // Part 3 -- sessions per core at ~50% aggregate utilization.
    let ks: &[usize] = match scale {
        Scale::Quick => &[1, 2, 4],
        Scale::Full => &[1, 2, 4, 8],
    };
    let mut table = Table::new(&[
        "sessions",
        "offered",
        "dropped",
        "worst p99 (ms)",
        "holds SLO",
    ]);
    let mut sustained = 0usize;
    for &k in ks {
        let per_tenant = (frames / k).max(4);
        let tenants = (0..k)
            .map(|i| {
                Tenant::poisson(
                    &format!("t{i}"),
                    17 + i as u64,
                    service * (2 * k) as u32,
                    per_tenant,
                )
            })
            .collect();
        let stats = serve_tenants(
            cfg,
            &ds,
            IngestConfig::new()
                .with_inbox_capacity(4)
                .with_late_policy(LatePolicy::DropOldest),
            Some(slo.clone()),
            1,
            tenants,
        );
        let offered: u64 = stats.iter().map(|(_, s)| s.offered).sum();
        let dropped: u64 = stats.iter().map(|(_, s)| s.dropped()).sum();
        let worst_p99 = stats
            .iter()
            .map(|(_, s)| s.latency.p99())
            .max()
            .unwrap_or(0);
        let holds = worst_p99 <= slo_ns;
        if holds && k > sustained {
            sustained = k;
        }
        table.row(vec![
            k.to_string(),
            offered.to_string(),
            dropped.to_string(),
            ms(worst_p99),
            holds.to_string(),
        ]);
    }
    out.push_str("Part 3 -- tenants multiplexed on one worker thread:\n");
    out.push_str(&table.render());
    out.push_str(&format!("sessions-per-core at SLO: {sustained}\n"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcg_is_deterministic_and_exponential_mean_is_close() {
        let mut a = Lcg::new(42);
        let mut b = Lcg::new(42);
        assert_eq!(a.next_u64(), b.next_u64());
        let mean = Duration::from_millis(10);
        let mut rng = Lcg::new(7);
        let total: Duration = (0..4000).map(|_| rng.exp(mean)).sum();
        let avg = total.as_secs_f64() / 4000.0;
        assert!((avg - 0.010).abs() < 0.001, "mean drifted: {avg}");
    }

    #[test]
    fn bursty_schedule_shapes_gaps() {
        let t = Tenant::bursty("b", 3, Duration::from_millis(5), 7);
        let zeros = t.gaps.iter().filter(|g| g.is_zero()).count();
        assert_eq!(zeros, 4); // indices 1,2,4,5 inside bursts
        assert_eq!(t.gaps[0], Duration::from_millis(5));
    }
}
