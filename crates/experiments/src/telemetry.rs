//! Telemetry demonstration (not a paper artifact): enables span tracing,
//! runs a tracked frame plus a short hibernating serve, and reports what
//! the always-on instrumentation collected — latency percentiles from the
//! registry histograms, hibernation I/O totals, a Chrome `trace_event`
//! export, and an exactness check that the span-derived stage breakdown
//! (the paper's Fig. 3 decomposition) agrees with the `StageNanos`
//! accumulator bit for bit.

use crate::common::{f, slam_config, Scale, Table};
use rtgs_render::ShardedScene;
use rtgs_runtime::{fleet_latency, EvictionPolicy, Serve};
use rtgs_scene::{DatasetProfile, SyntheticDataset};
use rtgs_slam::{
    track_frame, BaseAlgorithm, NoObserver, SlamPipeline, StageId, StageNanos, TrackingConfig,
};
use rtgs_telemetry as telemetry;

/// Unique marker span: identifies the experiment thread's ring so the
/// agreement check is immune to spans other threads record concurrently.
const SENTINEL: &str = "experiment.telemetry.sentinel";

pub fn telemetry(scale: Scale) -> String {
    let ds =
        SyntheticDataset::generate(scale.profile(DatasetProfile::tum_analog()), scale.frames());
    telemetry::set_tracing_enabled(true);
    telemetry::clear_spans();
    telemetry::emit_span(SENTINEL, "meta", 0, 0, 0);

    // Part 1 — span-vs-stage agreement on one tracked frame. Every stage
    // span is emitted with the same measured nanoseconds the accumulator
    // adds, so the two Fig. 3 decompositions must be identical.
    let map = ShardedScene::from_scene(&ds.reference_scene, 1.0);
    let mut mask = vec![true; map.capacity()];
    let mut timings = StageNanos::default();
    let _ = track_frame(
        &map,
        ds.poses_c2w[1].inverse(),
        &ds.frames[1],
        &ds.camera,
        &TrackingConfig {
            iterations: scale.tracking_iters(),
            ..Default::default()
        },
        &mut mask,
        &mut NoObserver,
        &mut timings,
    );
    let mut from_spans = StageNanos::default();
    for (_tid, events) in telemetry::collect_spans() {
        if !events.iter().any(|e| e.name == SENTINEL) {
            continue; // another thread's ring
        }
        for ev in &events {
            if let Some(stage) = StageId::from_span_name(ev.name) {
                from_spans.add(stage, ev.dur_ns);
            }
        }
    }
    let agree = from_spans == timings;

    // Part 2 — a short serve under a hibernate-to-disk eviction policy, so
    // the registry sees step latencies and spill I/O.
    let spill = std::env::temp_dir().join(format!("rtgs-telemetry-exp-{}", std::process::id()));
    std::fs::create_dir_all(&spill).ok();
    let sessions = BaseAlgorithm::all()
        .into_iter()
        .map(|algo| {
            let cfg = slam_config(algo, scale, false);
            (algo.name().to_string(), SlamPipeline::new(cfg, &ds))
        })
        .collect();
    let outcomes = Serve::builder()
        .threads(2)
        .eviction(EvictionPolicy::new(spill.clone()).with_max_resident_sessions(2))
        .run(sessions);
    telemetry::set_tracing_enabled(false);
    std::fs::remove_dir_all(&spill).ok();

    // Part 3 — Chrome trace export, validated structurally.
    let trace = telemetry::chrome_trace_json();
    let trace_valid = trace.contains("\"traceEvents\"") && json_is_balanced(&trace);
    let trace_events = trace.matches("\"ph\"").count();

    // Part 4 — what the registry collected, as percentile rows.
    let snap = telemetry::global().snapshot();
    let mut table = Table::new(&[
        "histogram",
        "count",
        "p50 (µs)",
        "p99 (µs)",
        "p999 (µs)",
        "max (µs)",
    ]);
    let us = |ns: u64| f(ns as f64 / 1e3, 1);
    for name in [
        "slam.frame_ns",
        "serve.step_ns",
        "snapshot.capture_ns",
        "snapshot.hibernate_ns",
        "snapshot.rehydrate_ns",
    ] {
        if let Some(h) = snap.histogram(name) {
            table.row(vec![
                name.into(),
                h.count().to_string(),
                us(h.p50()),
                us(h.p99()),
                us(h.p999()),
                us(h.max()),
            ]);
        }
    }
    let fleet = fleet_latency(&outcomes);
    let counter = |name: &str| snap.counter(name).unwrap_or(0);

    let mut out = String::from("Telemetry: always-on metrics and span tracing\n\n");
    out.push_str(&format!("span-vs-stage accounting agree: {agree}\n"));
    out.push_str(&format!(
        "chrome trace JSON: {} ({} events, {} bytes, {} spans dropped)\n",
        if trace_valid { "valid" } else { "INVALID" },
        trace_events,
        trace.len(),
        telemetry::dropped_spans(),
    ));
    out.push_str(&format!(
        "fleet step latency over {} sessions: {} steps, p50 {} µs, p99 {} µs, p999 {} µs\n",
        outcomes.len(),
        fleet.count(),
        us(fleet.p50()),
        us(fleet.p99()),
        us(fleet.p999()),
    ));
    out.push_str(&format!(
        "hibernate/rehydrate: {} / {} ops, {} / {} bytes spilled/restored\n",
        counter("serve.hibernate.count"),
        counter("serve.rehydrate.count"),
        counter("snapshot.hibernate.bytes"),
        counter("snapshot.rehydrate.bytes"),
    ));
    if let Some(hw) = snap.gauge("arena.high_water_bytes") {
        out.push_str(&format!("arena high-water mark: {hw} bytes\n"));
    }
    if let Some(vis) = snap.histogram("slam.visible_gaussians") {
        out.push_str(&format!(
            "visible set size: p50 {} / max {} gaussians per frame\n",
            vis.p50(),
            vis.max()
        ));
    }
    out.push('\n');
    out.push_str(&table.render());
    out
}

/// Structural JSON check: braces/brackets balance outside of strings and
/// the document is one value. Enough to catch a malformed export without a
/// full parser.
fn json_is_balanced(text: &str) -> bool {
    let mut depth = 0i64;
    let mut in_string = false;
    let mut escaped = false;
    for b in text.bytes() {
        if in_string {
            match b {
                _ if escaped => escaped = false,
                b'\\' => escaped = true,
                b'"' => in_string = false,
                _ => {}
            }
            continue;
        }
        match b {
            b'"' => in_string = true,
            b'{' | b'[' => depth += 1,
            b'}' | b']' => {
                depth -= 1;
                if depth < 0 {
                    return false;
                }
            }
            _ => {}
        }
    }
    depth == 0 && !in_string
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn telemetry_experiment_agrees_and_exports_valid_trace() {
        let out = telemetry(Scale::Quick);
        assert!(
            out.contains("span-vs-stage accounting agree: true"),
            "{out}"
        );
        assert!(out.contains("chrome trace JSON: valid"), "{out}");
        assert!(out.contains("slam.frame_ns"), "{out}");
        assert!(out.contains("p999"), "{out}");
    }

    #[test]
    fn json_balance_checker() {
        assert!(json_is_balanced(r#"{"a": [1, 2, {"b": "}"}]}"#));
        assert!(!json_is_balanced(r#"{"a": [1, 2}"#));
        assert!(!json_is_balanced(r#"{"a": "unterminated}"#));
    }
}
