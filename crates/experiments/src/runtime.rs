//! Runtime-subsystem experiments (not a paper artifact): serial-vs-parallel
//! kernel scaling and the multi-session serving demonstration.

use crate::common::{f, slam_config, Scale, Table};
use rtgs_render::{compute_loss, render_frame_fused_with, LossConfig};
use rtgs_runtime::{Backend, BackendChoice, Parallel, Serial};
use rtgs_scene::{DatasetProfile, SyntheticDataset};
use rtgs_slam::{serve_sessions, BaseAlgorithm, SlamPipeline};
use std::time::Instant;

/// Serial-vs-parallel wall-clock of the four hot paths plus a bitwise
/// equivalence check, at pool sizes 1/2/4/8.
pub fn runtime_scaling(scale: Scale) -> String {
    let ds = SyntheticDataset::generate(scale.profile(DatasetProfile::scannet_analog()), 2);
    let scene = ds.reference_scene.clone();
    let w2c = ds.poses_c2w[0].inverse();

    let time_backend = |backend: &dyn Backend| {
        let t0 = Instant::now();
        // Fused tile pass: the forward records fragment sequences, the
        // backward consumes them (one tile traversal shared by both).
        let ctx = render_frame_fused_with(&scene, &w2c, &ds.camera, None, backend);
        let forward = t0.elapsed();
        let loss = compute_loss(
            &ctx.output,
            &ds.frames[0].color,
            ds.frames[0].depth.as_ref(),
            &LossConfig::default(),
        );
        let t1 = Instant::now();
        let grads = ctx.backward(&scene, &ds.camera, &w2c, &loss.pixel_grads, backend);
        (forward, t1.elapsed(), ctx, grads)
    };

    let (fwd_serial, bwd_serial, ctx_serial, grads_serial) = time_backend(&Serial);
    let mut table = Table::new(&[
        "backend",
        "forward (ms)",
        "backward (ms)",
        "bitwise == serial",
    ]);
    table.row(vec![
        "serial".into(),
        f(fwd_serial.as_secs_f64() * 1e3, 2),
        f(bwd_serial.as_secs_f64() * 1e3, 2),
        "-".into(),
    ]);
    for threads in [1usize, 2, 4, 8] {
        let backend = Parallel::new(threads);
        let (fwd, bwd, ctx, grads) = time_backend(&backend);
        let identical = ctx.output.image == ctx_serial.output.image
            && ctx.output.final_transmittance == ctx_serial.output.final_transmittance
            && grads.pose == grads_serial.pose
            && grads.gaussians == grads_serial.gaussians;
        table.row(vec![
            format!("parallel({threads})"),
            f(fwd.as_secs_f64() * 1e3, 2),
            f(bwd.as_secs_f64() * 1e3, 2),
            identical.to_string(),
        ]);
    }
    format!(
        "Runtime scaling on {} ({} Gaussians, {}x{}):\n{}",
        ds.profile.name,
        scene.len(),
        ds.camera.width,
        ds.camera.height,
        table.render()
    )
}

/// Multi-session serving: one SLAM session per base algorithm, multiplexed
/// concurrently over the shared pool with round-robin frame scheduling.
pub fn serving(scale: Scale) -> String {
    let ds =
        SyntheticDataset::generate(scale.profile(DatasetProfile::tum_analog()), scale.frames());
    let t0 = Instant::now();
    let sessions = BaseAlgorithm::all()
        .into_iter()
        .map(|algo| {
            let cfg = slam_config(algo, scale, false)
                .with_backend(BackendChoice::Parallel { threads: 0 });
            (algo.name().to_string(), SlamPipeline::new(cfg, &ds))
        })
        .collect();
    let outcomes = serve_sessions(sessions, 0);
    let wall = t0.elapsed();

    let mut table = Table::new(&[
        "session",
        "frames",
        "steps",
        "ATE (cm)",
        "PSNR (dB)",
        "session wall (s)",
    ]);
    let mut busy = 0.0f64;
    for outcome in &outcomes {
        busy += outcome.stats.wall.as_secs_f64();
        table.row(vec![
            outcome.stats.label.clone(),
            outcome.report.frames_processed.to_string(),
            outcome.stats.steps.to_string(),
            f(outcome.report.ate.rmse * 100.0, 2),
            f(outcome.report.mean_psnr, 2),
            f(outcome.stats.wall.as_secs_f64(), 2),
        ]);
    }
    format!(
        "{} concurrent SLAM sessions over one pool ({} wall seconds, {:.2} busy-seconds served):\n{}",
        outcomes.len(),
        f(wall.as_secs_f64(), 2),
        busy,
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_scaling_reports_bitwise_equality() {
        let out = runtime_scaling(Scale::Quick);
        assert!(out.contains("parallel(2)"));
        assert!(out.contains("true"));
        assert!(!out.contains("false"));
    }

    #[test]
    fn serving_runs_all_four_algorithms() {
        let out = serving(Scale::Quick);
        for algo in BaseAlgorithm::all() {
            assert!(out.contains(algo.name()), "missing {}", algo.name());
        }
    }
}
