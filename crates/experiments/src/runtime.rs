//! Runtime-subsystem experiments (not a paper artifact): serial-vs-parallel
//! kernel scaling, the zero-allocation frame-arena steady state, and the
//! multi-session serving demonstration.

use crate::common::{f, slam_config, Scale, Table};
use rtgs_render::{compute_loss, render_frame_fused_with, FrameArena, LossConfig};
use rtgs_runtime::Serve;
use rtgs_runtime::{Backend, BackendChoice, Parallel, Serial};
use rtgs_scene::{DatasetProfile, SyntheticDataset};
use rtgs_slam::{BaseAlgorithm, SlamPipeline};
use std::time::Instant;

/// Serial-vs-parallel wall-clock of the four hot paths plus a bitwise
/// equivalence check, at pool sizes 1/2/4/8.
pub fn runtime_scaling(scale: Scale) -> String {
    let ds = SyntheticDataset::generate(scale.profile(DatasetProfile::scannet_analog()), 2);
    let scene = ds.reference_scene.clone();
    let w2c = ds.poses_c2w[0].inverse();

    let time_backend = |backend: &dyn Backend| {
        let t0 = Instant::now();
        // Fused tile pass: the forward records fragment sequences, the
        // backward consumes them (one tile traversal shared by both).
        let ctx = render_frame_fused_with(&scene, &w2c, &ds.camera, None, backend);
        let forward = t0.elapsed();
        let loss = compute_loss(
            &ctx.output,
            &ds.frames[0].color,
            ds.frames[0].depth.as_ref(),
            &LossConfig::default(),
        );
        let t1 = Instant::now();
        let grads = ctx.backward(&scene, &ds.camera, &w2c, &loss.pixel_grads, backend);
        (forward, t1.elapsed(), ctx, grads)
    };

    let (fwd_serial, bwd_serial, ctx_serial, grads_serial) = time_backend(&Serial);
    let mut table = Table::new(&[
        "backend",
        "forward (ms)",
        "backward (ms)",
        "bitwise == serial",
    ]);
    table.row(vec![
        "serial".into(),
        f(fwd_serial.as_secs_f64() * 1e3, 2),
        f(bwd_serial.as_secs_f64() * 1e3, 2),
        "-".into(),
    ]);
    for threads in [1usize, 2, 4, 8] {
        let backend = Parallel::new(threads);
        let (fwd, bwd, ctx, grads) = time_backend(&backend);
        let identical = ctx.output.image == ctx_serial.output.image
            && ctx.output.final_transmittance == ctx_serial.output.final_transmittance
            && grads.pose == grads_serial.pose
            && grads.gaussians == grads_serial.gaussians;
        table.row(vec![
            format!("parallel({threads})"),
            f(fwd.as_secs_f64() * 1e3, 2),
            f(bwd.as_secs_f64() * 1e3, 2),
            identical.to_string(),
        ]);
    }
    format!(
        "Runtime scaling on {} ({} Gaussians, {}x{}):\n{}",
        ds.profile.name,
        scene.len(),
        ds.camera.width,
        ds.camera.height,
        table.render()
    )
}

/// Frame-arena steady state: wall-clock of one full tracking-style
/// iteration (cull → project → CSR tile assign → fused forward → loss →
/// fused backward) through a warm reused [`FrameArena`] versus the
/// fresh-allocation entry points, with a bitwise-equality check. The delta
/// is the heap churn the arena removes from every optimizer iteration.
pub fn arena_steady_state(scale: Scale) -> String {
    let ds = SyntheticDataset::generate(scale.profile(DatasetProfile::scannet_analog()), 2);
    let map = rtgs_render::ShardedScene::from_scene(&ds.reference_scene, 1.0);
    let mask = vec![true; map.capacity()];
    let w2c = ds.poses_c2w[1].inverse();
    let frame = &ds.frames[1];
    let cfg = LossConfig::default();
    let backend = Serial;
    let iterations = 20usize.max(scale.tracking_iters());

    let mut arena = FrameArena::new();
    let arena_iter = |arena: &mut FrameArena| {
        arena.cull(&map, &w2c, &ds.camera, Some(&mask), &backend);
        arena.project_visible(&w2c, &ds.camera, &backend);
        arena.assign_tiles(&ds.camera, &backend);
        arena.render_fused(&ds.camera, &backend);
        arena.compute_loss(&frame.color, frame.depth.as_ref(), &cfg);
        arena.backward_visible_fused(&ds.camera, &w2c, &backend);
    };
    // Warm-up establishes every buffer's steady-state capacity.
    arena_iter(&mut arena);
    arena_iter(&mut arena);
    let t0 = Instant::now();
    for _ in 0..iterations {
        arena_iter(&mut arena);
    }
    let arena_wall = t0.elapsed();
    let arena_pose = arena.backward().pose;
    let arena_image = arena.output().image.clone();

    let t1 = Instant::now();
    let mut fresh_pose = [0.0f32; 6];
    let mut fresh_image = None;
    for _ in 0..iterations {
        let visible = map.visible_frame_with(&w2c, &ds.camera, Some(&mask), &backend);
        let projection =
            rtgs_render::project_scene_with(&visible.scene, &w2c, &ds.camera, None, &backend);
        let tiles = rtgs_render::TileAssignment::build_with(&projection, &ds.camera, &backend);
        let fused = rtgs_render::render_fused_with(&projection, &tiles, &ds.camera, &backend);
        let loss = compute_loss(&fused.output, &frame.color, frame.depth.as_ref(), &cfg);
        let grads = rtgs_render::backward_fused_with(
            &visible.scene,
            &projection,
            &tiles,
            &ds.camera,
            &w2c,
            &loss.pixel_grads,
            &fused.fragments,
            &backend,
        );
        fresh_pose = grads.pose;
        fresh_image = Some(fused.output.image);
    }
    let fresh_wall = t1.elapsed();

    let identical = fresh_pose == arena_pose && fresh_image.as_ref() == Some(&arena_image);
    let mut table = Table::new(&["path", "iteration (µs)", "bitwise identical"]);
    let per_iter = |wall: std::time::Duration| wall.as_secs_f64() * 1e6 / iterations as f64;
    table.row(vec![
        "arena_reuse (steady state)".into(),
        f(per_iter(arena_wall), 1),
        "-".into(),
    ]);
    table.row(vec![
        "fresh_alloc".into(),
        f(per_iter(fresh_wall), 1),
        identical.to_string(),
    ]);
    format!(
        "Zero-allocation steady state on {} ({} Gaussians, {} iterations):\n{}",
        ds.profile.name,
        map.len(),
        iterations,
        table.render()
    )
}

/// Multi-session serving: one SLAM session per base algorithm, multiplexed
/// concurrently over the shared pool with round-robin frame scheduling.
pub fn serving(scale: Scale) -> String {
    let ds =
        SyntheticDataset::generate(scale.profile(DatasetProfile::tum_analog()), scale.frames());
    let t0 = Instant::now();
    let sessions = BaseAlgorithm::all()
        .into_iter()
        .map(|algo| {
            let cfg = slam_config(algo, scale, false)
                .with_backend(BackendChoice::Parallel { threads: 0 });
            (algo.name().to_string(), SlamPipeline::new(cfg, &ds))
        })
        .collect();
    let outcomes = Serve::builder().threads(0).run(sessions);
    let wall = t0.elapsed();

    let mut table = Table::new(&[
        "session",
        "frames",
        "steps",
        "ATE (cm)",
        "PSNR (dB)",
        "wall (s)",
        "p50 (ms)",
        "p99 (ms)",
        "p999 (ms)",
        "I/O (ms)",
    ]);
    let ms = |ns: u64| f(ns as f64 / 1e6, 2);
    let mut busy = 0.0f64;
    for outcome in &outcomes {
        busy += outcome.stats.wall.as_secs_f64();
        let io = outcome.stats.hibernate_wall + outcome.stats.rehydrate_wall;
        table.row(vec![
            outcome.stats.label.clone(),
            outcome.report.frames_processed.to_string(),
            outcome.stats.steps.to_string(),
            f(outcome.report.ate.rmse * 100.0, 2),
            f(outcome.report.mean_psnr, 2),
            f(outcome.stats.wall.as_secs_f64(), 2),
            ms(outcome.stats.latency.p50()),
            ms(outcome.stats.latency.p99()),
            ms(outcome.stats.latency.p999()),
            f(io.as_secs_f64() * 1e3, 2),
        ]);
    }
    let fleet = rtgs_runtime::fleet_latency(&outcomes);
    format!(
        "{} concurrent SLAM sessions over one pool ({} wall seconds, {:.2} busy-seconds served):\n{}\nfleet step latency: {} steps, p50 {} ms, p99 {} ms, p999 {} ms\n",
        outcomes.len(),
        f(wall.as_secs_f64(), 2),
        busy,
        table.render(),
        fleet.count(),
        ms(fleet.p50()),
        ms(fleet.p99()),
        ms(fleet.p999()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_scaling_reports_bitwise_equality() {
        let out = runtime_scaling(Scale::Quick);
        assert!(out.contains("parallel(2)"));
        assert!(out.contains("true"));
        assert!(!out.contains("false"));
    }

    #[test]
    fn arena_steady_state_is_bitwise_identical_to_fresh() {
        let out = arena_steady_state(Scale::Quick);
        assert!(out.contains("arena_reuse"));
        assert!(out.contains("true"));
        assert!(!out.contains("false"));
    }

    #[test]
    fn serving_runs_all_four_algorithms() {
        let out = serving(Scale::Quick);
        for algo in BaseAlgorithm::all() {
            assert!(out.contains(algo.name()), "missing {}", algo.name());
        }
        assert!(out.contains("fleet step latency"), "{out}");
        assert!(out.contains("p999"), "{out}");
    }
}
