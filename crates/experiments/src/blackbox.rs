//! Flight-recorder drill (not a paper artifact): kill the primary
//! mid-trajectory under chaos faults with the black-box journal and frame
//! tracing enabled, promote the standby, and verify that the triggered
//! post-mortem bundle and the stitched cross-process Chrome trace
//! reconstruct the failing frame's full lifecycle
//! (ingest → shed/track → checkpoint → wire → replay).

use crate::common::{slam_config, Scale, Table};
use rtgs_replicate::{duplex_pair, FaultPlan, Follower, ReplicationPolicy, Replicator};
use rtgs_runtime::{HealthVerdict, IngestConfig, IngestHub, Serve};
use rtgs_scene::{DatasetProfile, SyntheticDataset};
use rtgs_slam::{config_fingerprint, BaseAlgorithm, OpenLoopSession, SlamPipeline, SloPolicy};
use rtgs_telemetry as telemetry;
use rtgs_telemetry::flight::hops;
use rtgs_telemetry::{EventKind, FlightRecorder, TriggerKind, TriggerSpec};
use std::collections::HashSet;
use std::time::Duration;

/// Black-box flight-recorder drill: a traced open-loop primary replicates
/// under chaos faults and dies mid-trajectory; the standby promotes; the
/// failover trigger dumps a post-mortem bundle whose journal tail and
/// stitched two-process Chrome trace reconstruct the lost frames' full
/// lifecycle. A second fleet run surfaces per-session health verdicts.
pub fn blackbox(scale: Scale) -> String {
    let ds =
        SyntheticDataset::generate(scale.profile(DatasetProfile::tum_analog()), scale.frames());
    let cfg = slam_config(BaseAlgorithm::GsSlam, scale, false);
    let fingerprint = config_fingerprint(&cfg);
    let frames = scale.frames();
    let kill_at = (frames / 2).max(2) as u64;

    // Arm the recorder stack: journal + span tracing on, clean slate.
    let dir = std::env::temp_dir().join("rtgs-blackbox-bundles");
    std::fs::create_dir_all(&dir).ok();
    for entry in std::fs::read_dir(&dir).into_iter().flatten().flatten() {
        std::fs::remove_file(entry.path()).ok();
    }
    telemetry::set_journal_enabled(true);
    telemetry::warm_journal();
    telemetry::clear_journal();
    telemetry::set_tracing_enabled(true);
    telemetry::clear_spans();

    let mut recorder = FlightRecorder::new(&dir)
        .with_trigger(TriggerSpec::on(TriggerKind::Failover, 2))
        .with_trigger(TriggerSpec::drop_rate(0.2, 2))
        .with_journal_tail(64);
    recorder.set_context("config_fingerprint", fingerprint);
    recorder.set_context("kill_frame", kill_at);

    // -- Part 1: traced primary under chaos, killed mid-trajectory -------
    // The primary serves open-loop (every frame minted a TraceCtx at the
    // ingest front door) and replicates each step; the follower does NOT
    // pump until after the crash, exactly like a standby on another
    // machine whose link buffers the stream.
    let hub = IngestHub::new(IngestConfig::new().with_inbox_capacity(frames.max(1)));
    let (tx, rx) = hub.channel::<()>().unwrap();
    for _ in 0..frames {
        tx.push(());
    }
    tx.close();
    let channel = rx.channel_id();

    let (primary_link, follower_link) = duplex_pair();
    let mut replicator = Replicator::new(
        primary_link,
        fingerprint,
        ReplicationPolicy::new().with_retransmit_after(2),
        FaultPlan::chaos(4242),
    );
    let mut doomed = SlamPipeline::new(cfg, &ds);
    let slo = SloPolicy::new(Duration::from_secs(3600)).with_depth_high(1);
    let mut shedding = false;
    let mut processed = 0u64;
    let mut last_trace_id = 0u64;
    while let Some(frame) = rx.try_pop() {
        // Shed decision, as OpenLoopSession makes it: backlog is future
        // latency, so degrade while frames wait behind this one.
        let degraded = rx.depth() >= slo.depth_high;
        if degraded != shedding {
            shedding = degraded;
            let kind = if degraded {
                EventKind::ShedDegrade
            } else {
                EventKind::ShedRestore
            };
            telemetry::journal_record(kind, channel, frame.trace.trace_id, frame.seq, 1);
        }
        doomed.set_frame_trace(frame.trace);
        doomed.set_pressure_factor(if degraded { slo.degrade_factor } else { 1 });
        let Some(index) = doomed.step() else { break };
        last_trace_id = doomed.last_trace().trace_id;
        replicator
            .on_frame_traced(index as u64, doomed.last_trace(), |log| {
                doomed.checkpoint_into(log)
            })
            .expect("replication capture");
        replicator.pump().expect("primary pump");
        rx.frame_done(frame, degraded);
        processed += 1;
        if processed >= kill_at {
            break;
        }
    }
    let stream = replicator.stats();
    let faults = replicator.fault_stats();
    // The crash: primary process state and its replicator vanish. Export
    // the primary's ring as its own trace-part first — on a real
    // deployment this is the black box recovered from the dead machine.
    let primary_part = telemetry::chrome_trace_events(1);
    let primary_spans: Vec<telemetry::SpanEvent> = telemetry::collect_spans()
        .into_iter()
        .flat_map(|(_, events)| events)
        .collect();
    telemetry::clear_spans();
    drop(doomed);
    drop(replicator);

    // -- Follower side: drain what survived, promote, trigger the dump ---
    let mut follower = Follower::new(follower_link, fingerprint).with_session_index(1);
    follower.pump().expect("post-crash drain");
    let applied = follower.records_applied();
    let (mut promoted, takeover) = follower.promote(cfg, &ds).expect("promote the standby");
    while promoted.step().is_some() {}
    let promoted_report = promoted.report();
    let follower_part = telemetry::chrome_trace_events(2);
    let follower_spans: Vec<telemetry::SpanEvent> = telemetry::collect_spans()
        .into_iter()
        .flat_map(|(_, events)| events)
        .collect();

    let bundle_path = recorder
        .notify(TriggerKind::Failover, 1, last_trace_id)
        .expect("failover trigger dumps a bundle");
    let bundle_text = std::fs::read_to_string(&bundle_path).unwrap_or_default();
    let bundle_valid = telemetry::bundle_is_valid(&bundle_text);

    // -- Stitch check: one trace id through all five hops, two processes -
    let stitched = telemetry::wrap_trace_events(&[primary_part, follower_part]);
    let hop_set = |spans: &[telemetry::SpanEvent], hop: u32| -> HashSet<u64> {
        spans
            .iter()
            .filter(|s| s.flow != 0 && s.hop == hop)
            .map(|s| s.flow)
            .collect()
    };
    let ingest_ids = hop_set(&primary_spans, hops::INGEST);
    let track_ids = hop_set(&primary_spans, hops::TRACK);
    let checkpoint_ids = hop_set(&primary_spans, hops::CHECKPOINT);
    let wire_ids = hop_set(&primary_spans, hops::WIRE);
    let replay_ids = hop_set(&follower_spans, hops::REPLAY);
    let full_lifecycle: HashSet<&u64> = ingest_ids
        .iter()
        .filter(|id| {
            track_ids.contains(id)
                && checkpoint_ids.contains(id)
                && wire_ids.contains(id)
                && replay_ids.contains(id)
        })
        .collect();
    let trace_stitched = !full_lifecycle.is_empty()
        && telemetry::json_balanced(&stitched)
        && stitched.contains("\"ph\": \"s\"")
        && stitched.contains("\"ph\": \"f\"");

    // -- Overload vignette: admission rejects, frame drops, drop-rate ----
    let tight = IngestHub::new(
        IngestConfig::new()
            .with_inbox_capacity(2)
            .with_max_sessions(1),
    );
    let (otx, orx) = tight.channel::<u32>().unwrap();
    let admission_rejected = tight.channel::<u32>().is_err();
    for v in 0..8u32 {
        otx.push(v);
    }
    while let Some(f) = orx.try_pop() {
        orx.frame_done(f, false);
    }
    let overload = orx.stats();
    let drop_bundle =
        recorder.observe_drop_rate(orx.channel_id(), overload.dropped(), overload.offered);
    let drop_bundle_valid = drop_bundle
        .as_ref()
        .map(|p| std::fs::read_to_string(p).unwrap_or_default())
        .is_some_and(|text| telemetry::bundle_is_valid(&text));

    let events = telemetry::journal_events();
    let count = |kind: EventKind| events.iter().filter(|e| e.kind == kind).count();
    let mut journal_table = Table::new(&["journal event", "count"]);
    for kind in [
        EventKind::AdmissionReject,
        EventKind::FrameDrop,
        EventKind::ShedDegrade,
        EventKind::Resync,
        EventKind::Retransmit,
        EventKind::EpochBump,
        EventKind::Promote,
    ] {
        journal_table.row(vec![kind.name().into(), count(kind).to_string()]);
    }
    let journal_covers = count(EventKind::ShedDegrade) > 0
        && count(EventKind::Promote) > 0
        && count(EventKind::FrameDrop) > 0
        && count(EventKind::AdmissionReject) > 0
        && admission_rejected;

    let mut out = format!(
        "Black-box drill on {} ({frames} frames, primary killed after {kill_at}, \
         seeded chaos faults, journal + tracing enabled):\n{}\n\
         records sent {} / applied at standby {}; retransmits {}; \
         follower lag at crash {} frames; faults injected {}\n\
         time to takeover: {:.2} ms; promoted trajectory frames: {}\n\
         bundle: {}\n\
         bundle valid: {bundle_valid}\n\
         drop-rate bundle valid: {drop_bundle_valid}\n\
         frames with full 5-hop lifecycle (ingest>track>checkpoint>wire>replay): {}\n\
         trace stitched across processes: {trace_stitched}\n",
        ds.profile.name,
        journal_table.render(),
        stream.records_sent,
        applied,
        stream.retransmits,
        stream.frames_behind,
        faults.dropped + faults.duplicated + faults.truncated + faults.corrupted + faults.delayed,
        takeover.as_secs_f64() * 1e3,
        promoted_report.trajectory.len(),
        bundle_path.display(),
        full_lifecycle.len(),
    );
    out.push_str(&format!(
        "journal covers the fault chain: {journal_covers}\n"
    ));

    // -- Part 2: fleet health verdicts through Serve::builder ------------
    let mk = |capacity: usize, tickets: usize| {
        let hub = IngestHub::new(IngestConfig::new().with_inbox_capacity(capacity));
        let (tx, rx) = hub.channel::<()>().unwrap();
        for _ in 0..tickets {
            tx.push(());
        }
        tx.close();
        (hub, rx)
    };
    let health_frames = frames.min(6);
    let (healthy_hub, healthy_rx) = mk(health_frames.max(1), health_frames);
    let (_, swamped_rx) = mk(2, health_frames + 6);
    let sessions = vec![
        (
            "steady".to_string(),
            OpenLoopSession::new(SlamPipeline::new(cfg, &ds), healthy_rx),
        ),
        (
            "swamped".to_string(),
            OpenLoopSession::new(SlamPipeline::new(cfg, &ds), swamped_rx),
        ),
    ];
    let outcomes = Serve::builder()
        .threads(2)
        .ingest(&healthy_hub)
        .run(sessions);
    let mut verdict_ok = true;
    for outcome in &outcomes {
        let health = &outcome.stats.health;
        out.push_str(&health.render());
        out.push('\n');
        match health.session.as_str() {
            "steady" => verdict_ok &= health.verdict() == HealthVerdict::Healthy,
            "swamped" => verdict_ok &= health.verdict() != HealthVerdict::Healthy,
            _ => {}
        }
    }
    out.push_str(&format!(
        "health verdicts match load (steady healthy, swamped not): {verdict_ok}\n"
    ));

    telemetry::set_tracing_enabled(false);
    telemetry::set_journal_enabled(false);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blackbox_bundle_and_stitched_trace_reconstruct_the_crash() {
        let out = blackbox(Scale::Quick);
        assert!(out.contains("bundle valid: true"), "{out}");
        assert!(out.contains("drop-rate bundle valid: true"), "{out}");
        assert!(
            out.contains("trace stitched across processes: true"),
            "{out}"
        );
        assert!(
            out.contains("journal covers the fault chain: true"),
            "{out}"
        );
        assert!(
            out.contains("health verdicts match load (steady healthy, swamped not): true"),
            "{out}"
        );
        assert!(!out.contains("false"), "{out}");
    }
}
