//! Per-table / per-figure reproduction harness for the RTGS paper.
//!
//! Each public function regenerates one table or figure of the paper's
//! evaluation (Sec. 6) as formatted text; the `experiments` binary
//! dispatches by name:
//!
//! ```bash
//! cargo run -p rtgs-experiments --release -- table6
//! cargo run -p rtgs-experiments --release -- all --full
//! ```
//!
//! Absolute numbers differ from the paper (CPU rasterizer, dataset analogs
//! at 1/16 resolution, cycle models instead of GPGPU-Sim); the *shape* —
//! who wins, by what factor, where crossovers fall — is the reproduction
//! target. See EXPERIMENTS.md for paper-vs-measured records.

mod algorithm;
mod blackbox;
mod common;
mod failover;
mod hardware;
mod loadgen;
mod persistence;
mod profiling;
mod runtime;
mod telemetry;

pub use algorithm::{fig13, fig14, table2, table6, table7};
pub use blackbox::blackbox;
pub use common::{
    dataset, default_backend, f, run_variant, set_default_backend, slam_config, to_workload, Scale,
    Table, Variant,
};
pub use failover::failover;
pub use hardware::{fig15, fig16, fig17, table4};
pub use loadgen::loadgen;
pub use persistence::persistence;
pub use profiling::{fig3, fig4, fig5, fig6};
pub use runtime::{arena_steady_state, runtime_scaling, serving};
pub use telemetry::telemetry;

/// All experiments: the paper artifacts in paper order, then the runtime
/// subsystem's scaling, serving and persistence scenarios.
pub const EXPERIMENTS: &[&str] = &[
    "table2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "table6",
    "table7",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "table4",
    "runtime",
    "arena",
    "serving",
    "loadgen",
    "persistence",
    "failover",
    "telemetry",
    "blackbox",
];

/// Runs one experiment by name.
///
/// # Errors
///
/// Returns an error message when the name is unknown.
pub fn run_experiment(name: &str, scale: Scale) -> Result<String, String> {
    Ok(match name {
        "table2" => table2(scale),
        "fig3" => fig3(scale),
        "fig4" => fig4(scale),
        "fig5" => fig5(scale),
        "fig6" => fig6(scale),
        "table6" => table6(scale),
        "table7" => table7(scale),
        "fig13" => fig13(scale),
        "fig14" => fig14(scale),
        "fig15" => fig15(scale),
        "fig16" => fig16(scale),
        "fig17" => fig17(scale),
        "table4" | "table5" => table4(),
        "runtime" => runtime_scaling(scale),
        "arena" => arena_steady_state(scale),
        "serving" => serving(scale),
        "loadgen" => loadgen(scale),
        "persistence" => persistence(scale),
        "failover" => failover(scale),
        "telemetry" => telemetry(scale),
        "blackbox" => blackbox(scale),
        other => return Err(format!("unknown experiment: {other}")),
    })
}
