//! Hardware-side experiments: Fig. 15 (end-to-end FPS + energy), Fig. 16
//! (GauSPU comparison per Replica scene), Fig. 17 (ablations) and
//! Tab. 4/5 (configuration tables).

use crate::common::{dataset, f, run_variant, to_workload, Scale, Table, Variant};
use rtgs_accel::{
    imbalance_factor, simulate_run, Aggregation, ArchConfig, DeviceSpec, GpuSpec, HardwareModel,
    MemoryConfig, PluginConfig, Scheduling, TechNode,
};
use rtgs_scene::DatasetProfile;
use rtgs_slam::BaseAlgorithm;

fn plugin(scheduling: Scheduling, rb: bool, agg: Aggregation) -> HardwareModel {
    HardwareModel::Plugin {
        config: PluginConfig {
            arch: ArchConfig::paper(),
            scheduling,
            rb_buffer: rb,
            aggregation: agg,
        },
        node: TechNode::N28,
        host: GpuSpec::onx(),
        power_w: DeviceSpec::rtgs(TechNode::N28).power_w,
    }
}

/// Fig. 15: (a) end-to-end FPS for ONX / DISTWAR / Ours-tracking-only /
/// Ours-full; (b) energy-efficiency improvement.
pub fn fig15(scale: Scale) -> String {
    let mut out = String::from("Fig. 15(a): end-to-end FPS by hardware configuration\n");
    let mut table = Table::new(&[
        "algorithm",
        "dataset",
        "ONX",
        "DISTWAR",
        "Ours w/o map",
        "Ours full",
        "speedup",
    ]);
    let mut energy = Table::new(&["algorithm", "dataset", "energy-eff. gain"]);
    let profiles = [
        DatasetProfile::tum_analog(),
        DatasetProfile::replica_analog(),
        DatasetProfile::scannet_analog(),
        DatasetProfile::scannetpp_analog(),
    ];
    for (pi, profile) in profiles.iter().enumerate() {
        // Fig. 15(a) uses three datasets; (b) all four.
        let ds = dataset(scale.profile(profile.clone()), scale.frames());
        for algo in BaseAlgorithm::keyframe_based() {
            let base = run_variant(algo, &ds, scale, Variant::Base, true);
            let ours = run_variant(algo, &ds, scale, Variant::Ours, true);
            let base_run = to_workload(&base);
            let ours_run = to_workload(&ours);

            let onx = simulate_run(&base_run, &HardwareModel::onx(), true);
            let dw = simulate_run(&base_run, &HardwareModel::onx_distwar(), true);
            let part = simulate_run(&ours_run, &HardwareModel::rtgs(), false);
            let full = simulate_run(&ours_run, &HardwareModel::rtgs(), true);
            if pi < 3 {
                table.row(vec![
                    algo.name().into(),
                    ds.profile.name.clone(),
                    f(onx.overall_fps, 1),
                    f(dw.overall_fps, 1),
                    f(part.overall_fps, 1),
                    f(full.overall_fps, 1),
                    f(full.overall_fps / onx.overall_fps, 1) + "x",
                ]);
            }
            energy.row(vec![
                algo.name().into(),
                ds.profile.name.clone(),
                f(onx.energy_per_frame_j / full.energy_per_frame_j, 1) + "x",
            ]);
        }
    }
    out.push_str(&table.render());
    out.push_str("\nFig. 15(b): energy-efficiency improvement over the ONX baseline\n");
    out.push_str(&energy.render());
    out.push_str("\nExpected shape (paper): RTGS full >= 30 FPS everywhere; DISTWAR helps but\nstays below real time; energy-efficiency gains of tens of x.\n");
    out
}

/// Fig. 16: per-Replica-scene tracking FPS and peak Gaussian memory —
/// RTX 3090 vs GauSPU vs Ours.
pub fn fig16(scale: Scale) -> String {
    let mut out = String::from("Fig. 16: SplaTAM per Replica scene — RTX 3090 / GauSPU / Ours\n");
    let mut table = Table::new(&[
        "scene",
        "RTX FPS",
        "GauSPU FPS",
        "Ours FPS",
        "RTX mem(MB)",
        "Ours mem(MB)",
    ]);
    let names = DatasetProfile::replica_analog().scene_names();
    let scenes = match scale {
        Scale::Quick => 3usize,
        Scale::Full => names.len(),
    };
    #[allow(clippy::needless_range_loop)]
    for variant in 0..scenes {
        let profile = scale.profile(DatasetProfile::replica_analog());
        let ds = rtgs_scene::SyntheticDataset::generate_scene_variant(
            profile,
            scale.frames(),
            variant as u64,
        );
        let base = run_variant(BaseAlgorithm::SplaTam, &ds, scale, Variant::Base, true);
        let ours = run_variant(BaseAlgorithm::SplaTam, &ds, scale, Variant::Ours, true);
        let base_run = to_workload(&base);
        let ours_run = to_workload(&ours);
        let rtx = simulate_run(&base_run, &HardwareModel::rtx3090(), true);
        let gauspu = simulate_run(&base_run, &HardwareModel::gauspu(), true);
        let ours_hw = simulate_run(&ours_run, &HardwareModel::rtgs_on_rtx3090(), true);
        table.row(vec![
            names[variant].to_string(),
            f(rtx.tracking_fps, 1),
            f(gauspu.tracking_fps, 1),
            f(ours_hw.tracking_fps, 1),
            f(base.peak_param_bytes as f64 / 1e6, 2),
            f(ours.peak_param_bytes as f64 / 1e6, 2),
        ]);
    }
    out.push_str(&table.render());
    out.push_str("\nExpected shape (paper Fig. 16): Ours highest tracking FPS and lowest peak\nGaussian memory on every scene.\n");
    out
}

/// Fig. 17: (a) workload-imbalance mitigation ablation; (b) cumulative
/// technique speedup breakdown.
pub fn fig17(scale: Scale) -> String {
    let ds = dataset(
        scale.profile(DatasetProfile::replica_analog()),
        scale.frames(),
    );
    let base = run_variant(BaseAlgorithm::MonoGs, &ds, scale, Variant::Base, true);
    let base_run = to_workload(&base);

    // (a) imbalance factors from a real mid-run trace pair.
    let mut out = String::from("Fig. 17(a): workload-imbalance ablation (achieved/ideal cycles)\n");
    let mut table = Table::new(&["scheduling", "imbalance factor (1.0 = ideal)"]);
    let traces: Vec<_> = base.frames.iter().flat_map(|fr| fr.traces.iter()).collect();
    if traces.len() >= 2 {
        let (prev, now) = (traces[traces.len() - 2], traces[traces.len() - 1]);
        for (name, sched) in [
            ("static (unbalanced)", Scheduling::Static),
            ("subtile streaming", Scheduling::Streaming),
            ("streaming + pairwise (WSU)", Scheduling::StreamingPaired),
            ("ideal", Scheduling::Ideal),
        ] {
            table.row(vec![
                name.into(),
                f(imbalance_factor(now, Some(prev), sched), 3),
            ]);
        }
    }
    out.push_str(&table.render());

    // (b) cumulative technique breakdown.
    out.push_str("\nFig. 17(b): cumulative speedup breakdown over the ONX baseline\n");
    let mut table = Table::new(&["configuration", "FPS", "step speedup", "cumulative"]);
    let onx = simulate_run(&base_run, &HardwareModel::onx(), true);
    let mut prev_fps = onx.overall_fps;
    table.row(vec![
        "GPU baseline (ONX)".into(),
        f(onx.overall_fps, 1),
        "-".into(),
        "1.0x".into(),
    ]);
    let steps: Vec<(&str, HardwareModel, &rtgs_accel::RunWorkload)> = vec![
        (
            "w/ Pipeline (bare plug-in)",
            plugin(Scheduling::Static, false, Aggregation::Atomic),
            &base_run,
        ),
        (
            "w/ GMU",
            plugin(Scheduling::Static, false, Aggregation::Gmu),
            &base_run,
        ),
        (
            "w/ R&B Buffer",
            plugin(Scheduling::Static, true, Aggregation::Gmu),
            &base_run,
        ),
        (
            "w/ WSU",
            plugin(Scheduling::StreamingPaired, true, Aggregation::Gmu),
            &base_run,
        ),
    ];
    for (name, hw, run) in steps {
        let cost = simulate_run(run, &hw, true);
        table.row(vec![
            name.into(),
            f(cost.overall_fps, 1),
            f(cost.overall_fps / prev_fps, 2) + "x",
            f(cost.overall_fps / onx.overall_fps, 2) + "x",
        ]);
        prev_fps = cost.overall_fps;
    }
    // Algorithm steps change the workload itself.
    let pruned = {
        let r = run_variant(BaseAlgorithm::MonoGs, &ds, scale, Variant::Ours, true);
        to_workload(&r)
    };
    let full_hw = plugin(Scheduling::StreamingPaired, true, Aggregation::Gmu);
    let cost = simulate_run(&pruned, &full_hw, true);
    table.row(vec![
        "w/ Adaptive Pruning + Dynamic Downsampling".into(),
        f(cost.overall_fps, 1),
        f(cost.overall_fps / prev_fps, 2) + "x",
        f(cost.overall_fps / onx.overall_fps, 2) + "x",
    ]);
    out.push_str(&table.render());
    out.push_str("\nPaper reference (Fig. 17b): pipeline 2.49x, GMU 1.87x, R&B 1.6x, WSU 1.58x,\npruning 1.4x, downsampling 2.6x (cumulative ~48x).\n");
    out
}

/// Tab. 4 and Tab. 5: architecture configuration and device comparison.
pub fn table4() -> String {
    let arch = ArchConfig::paper();
    let mem = MemoryConfig::paper();
    let mut out = String::from("Tab. 4: RTGS architecture configuration\n");
    out.push_str(&format!(
        "REs: {} ({} RC/RBC each)   PEs: {} ({} Gaussians each)   GMUs: {}\n",
        arch.rendering_engines,
        arch.cores_per_re,
        arch.preprocessing_engines,
        arch.gaussians_per_pe,
        arch.gmus,
    ));
    out.push_str(&format!(
        "frequency: {} MHz   SRAM: {} KB   L2: {} MB\n\n",
        arch.frequency_hz / 1_000_000,
        mem.total_sram() / 1024,
        mem.l2_cache / 1024 / 1024,
    ));
    out.push_str("Tab. 5: device specifications\n");
    let mut table = Table::new(&["device", "node", "SRAM", "cores", "area(mm2)", "power(W)"]);
    for d in DeviceSpec::table5() {
        table.row(vec![
            d.name.into(),
            d.technology.into(),
            format!("{} KB", d.sram_bytes / 1024),
            d.cores.into(),
            f(d.area_mm2, 2),
            f(d.power_w, 2),
        ]);
    }
    out.push_str(&table.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_matches_paper_numbers() {
        let out = table4();
        assert!(out.contains("197 KB"));
        assert!(out.contains("28.41"));
        assert!(out.contains("500 MHz"));
    }
}
