//! Shared experiment infrastructure: SLAM run orchestration, workload
//! conversion and table formatting.

use rtgs_accel::{FrameWorkload, RunWorkload};
use rtgs_baselines::{BaselineExtension, TamingPruner};
use rtgs_core::RtgsConfig;
use rtgs_runtime::BackendChoice;
use rtgs_scene::{DatasetProfile, SyntheticDataset};
use rtgs_slam::{BaseAlgorithm, SlamConfig, SlamPipeline, SlamReport};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Encoded process-wide default backend: `0` = serial, `n > 0` =
/// parallel over `n - 1` threads (`1` = parallel at machine size).
static DEFAULT_BACKEND: AtomicUsize = AtomicUsize::new(0);

/// Sets the execution backend every subsequently-built SLAM configuration
/// uses (the `--parallel[=N]` flag of the experiments binary).
pub fn set_default_backend(choice: BackendChoice) {
    let encoded = match choice {
        BackendChoice::Serial => 0,
        BackendChoice::Parallel { threads } => threads + 1,
    };
    DEFAULT_BACKEND.store(encoded, Ordering::SeqCst);
}

/// The current process-wide default backend (see [`set_default_backend`]).
pub fn default_backend() -> BackendChoice {
    match DEFAULT_BACKEND.load(Ordering::SeqCst) {
        0 => BackendChoice::Serial,
        n => BackendChoice::Parallel { threads: n - 1 },
    }
}

/// Experiment scale: `Quick` keeps every experiment in tens of seconds on a
/// laptop CPU; `Full` runs the sizes reported in EXPERIMENTS.md.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced frames/iterations for smoke runs.
    Quick,
    /// The documented experiment scale.
    Full,
}

impl Scale {
    /// Frames per sequence.
    pub fn frames(&self) -> usize {
        match self {
            Scale::Quick => 6,
            Scale::Full => 14,
        }
    }

    /// Iteration scale factor applied to each algorithm's preset budgets
    /// (presets keep their *relative* iteration counts, which drive the
    /// accuracy/speed orderings of Tab. 2).
    pub fn iteration_factor(&self) -> f32 {
        match self {
            Scale::Quick => 0.5,
            Scale::Full => 0.8,
        }
    }

    /// Tracking iterations used for standalone tracking probes.
    pub fn tracking_iters(&self) -> usize {
        match self {
            Scale::Quick => 5,
            Scale::Full => 10,
        }
    }

    /// Dataset profile at this scale.
    pub fn profile(&self, base: DatasetProfile) -> DatasetProfile {
        match self {
            Scale::Quick => base.small(),
            Scale::Full => base,
        }
    }
}

/// Algorithm variant of Tab. 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// The unmodified base algorithm.
    Base,
    /// Base + Taming-3DGS pruning (50% target).
    Taming,
    /// Base + the RTGS algorithm (adaptive pruning + dynamic downsampling).
    Ours,
}

impl Variant {
    /// Row label prefix used in the tables.
    pub fn label(&self, algo: BaseAlgorithm) -> String {
        match self {
            Variant::Base => algo.name().to_string(),
            Variant::Taming => format!("Taming 3DGS+{}", algo.name()),
            Variant::Ours => format!("Ours+{}", algo.name()),
        }
    }
}

/// Builds the SLAM configuration for an algorithm at a scale, on the
/// process-wide default backend.
pub fn slam_config(algo: BaseAlgorithm, scale: Scale, traces: bool) -> SlamConfig {
    let mut cfg = SlamConfig::for_algorithm(algo).with_frames(scale.frames());
    let k = scale.iteration_factor();
    cfg.tracking.iterations = ((cfg.tracking.iterations as f32 * k) as usize).max(2);
    cfg.mapping_iterations = ((cfg.mapping_iterations as f32 * k) as usize).max(2);
    cfg.record_traces = traces;
    cfg.backend = default_backend();
    cfg
}

/// Runs one SLAM configuration on a dataset with the given variant.
pub fn run_variant(
    algo: BaseAlgorithm,
    dataset: &SyntheticDataset,
    scale: Scale,
    variant: Variant,
    traces: bool,
) -> SlamReport {
    let cfg = slam_config(algo, scale, traces);
    match variant {
        Variant::Base => SlamPipeline::new(cfg, dataset).run(),
        Variant::Taming => {
            // Taming 3DGS needs ~500 iterations to converge — far more than
            // a SLAM frame provides, so it acts with a shortened warm-up
            // (mirroring how the paper had to adapt it) and prunes 50%.
            let ext =
                BaselineExtension::new(TamingPruner::with_warmup(scale.tracking_iters() * 2), 0.5);
            SlamPipeline::with_extension(cfg, dataset, Box::new(ext)).run()
        }
        Variant::Ours => {
            SlamPipeline::with_extension(cfg, dataset, RtgsConfig::full().into_extension()).run()
        }
    }
}

/// Generates (and memoizes per call-site) the dataset for a profile.
pub fn dataset(profile: DatasetProfile, frames: usize) -> SyntheticDataset {
    SyntheticDataset::generate(profile, frames)
}

/// Converts a SLAM report's recorded traces into the hardware simulator's
/// input.
pub fn to_workload(report: &SlamReport) -> RunWorkload {
    RunWorkload {
        frames: report
            .frames
            .iter()
            .map(|f| FrameWorkload {
                tracking: f.traces.clone(),
                mapping: f.mapping_traces.clone(),
                is_keyframe: f.is_keyframe,
            })
            .collect(),
    }
}

/// Simple fixed-width table printer.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Renders the table as an aligned string.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!(
                    "{:<width$}",
                    cell,
                    width = widths.get(i).copied().unwrap_or(0)
                ));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a float to a fixed number of decimals.
pub fn f(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1.0".into()]);
        t.row(vec!["long-name".into(), "2.5".into()]);
        let s = t.render();
        assert!(s.contains("name"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    fn scale_full_is_larger() {
        assert!(Scale::Full.frames() > Scale::Quick.frames());
        assert!(Scale::Full.tracking_iters() > Scale::Quick.tracking_iters());
    }

    #[test]
    fn variant_labels() {
        assert_eq!(Variant::Base.label(BaseAlgorithm::MonoGs), "MonoGS");
        assert_eq!(Variant::Ours.label(BaseAlgorithm::GsSlam), "Ours+GS-SLAM");
    }
}
