//! Re-implemented pruning baselines the paper compares against
//! (Sec. 6.1–6.2, Tab. 6, Fig. 13a).
//!
//! Each baseline reproduces the *selection rule* and *cost profile* of the
//! original method on our Gaussian model:
//!
//! - [`TamingPruner`] — Taming 3DGS \[29\]: importance from gradient
//!   statistics collected over a long warm-up horizon. Effective for
//!   offline training; with SLAM's 15–100 iterations per frame the scores
//!   never converge, which is exactly the weakness Tab. 6 exposes.
//! - [`LightGaussianPruner`] — LightGaussian \[7\]: global one-shot
//!   importance from volume × opacity × hit-count, requiring a dedicated
//!   scoring pass over all training views (extra cost, better quality).
//! - [`FlashGsPruner`] — FlashGS \[8\]-style precise selection: adds an
//!   image-saliency weighting on top of hit counts, the most expensive
//!   evaluation of the three.
//!
//! All baselines implement [`Pruner`] and plug into the SLAM pipeline
//! through [`BaselineExtension`].

use rtgs_render::{GaussianGrad, GaussianScene, WorkloadTrace};
use rtgs_slam::{IterationArtifacts, PipelineExtension};

/// A Gaussian-pruning baseline: observes training, then selects which
/// Gaussians to keep.
pub trait Pruner {
    /// Observes one optimization iteration.
    fn observe(&mut self, grads: &[GaussianGrad], trace: Option<&WorkloadTrace>);

    /// Returns the keep-mask that prunes `ratio` of the scene (0.0–1.0),
    /// or `None` if the method has not gathered enough evidence yet.
    fn select(&mut self, scene: &GaussianScene, ratio: f32) -> Option<Vec<bool>>;

    /// Extra *score-evaluation* work performed per observed iteration, in
    /// fragment-equivalent operations. RTGS's score is free (gradients are
    /// reused); these baselines pay for their evaluation passes, which is
    /// what Fig. 13(a) charges them for.
    fn evaluation_overhead(&self) -> u64;

    /// Method name.
    fn name(&self) -> &'static str;
}

/// Taming-3DGS-style pruner: accumulates gradient-change statistics and
/// refuses to act before its warm-up horizon (500 iterations in the paper's
/// description) has elapsed.
#[derive(Debug, Clone)]
pub struct TamingPruner {
    /// Iterations required before scores are considered converged.
    pub warmup_iterations: usize,
    seen: usize,
    scores: Vec<f32>,
    prev_scores: Vec<f32>,
    overhead: u64,
}

impl TamingPruner {
    /// Creates the pruner with the paper-reported 500-iteration warm-up.
    pub fn new() -> Self {
        Self::with_warmup(500)
    }

    /// Creates the pruner with a custom warm-up horizon.
    pub fn with_warmup(warmup_iterations: usize) -> Self {
        Self {
            warmup_iterations,
            seen: 0,
            scores: Vec::new(),
            prev_scores: Vec::new(),
            overhead: 0,
        }
    }

    /// Iterations observed so far.
    pub fn iterations_seen(&self) -> usize {
        self.seen
    }
}

impl Default for TamingPruner {
    fn default() -> Self {
        Self::new()
    }
}

impl Pruner for TamingPruner {
    fn observe(&mut self, grads: &[GaussianGrad], _trace: Option<&WorkloadTrace>) {
        self.seen += 1;
        if self.scores.len() != grads.len() {
            self.scores.resize(grads.len(), 0.0);
            self.prev_scores.resize(grads.len(), 0.0);
        }
        // Gradient-change statistic: |g_t| blended with the previous
        // estimate; Taming 3DGS predicts importance from how scores evolve.
        for (i, g) in grads.iter().enumerate() {
            let s = g.position.norm() + g.cov_frobenius;
            self.prev_scores[i] = self.scores[i];
            self.scores[i] = 0.99 * self.scores[i] + 0.01 * s;
        }
        // Maintaining the dual score buffers costs one pass over the map.
        self.overhead += grads.len() as u64;
    }

    fn select(&mut self, scene: &GaussianScene, ratio: f32) -> Option<Vec<bool>> {
        if self.seen < self.warmup_iterations || self.scores.len() != scene.len() {
            // Scores have not converged: acting now would prune the wrong
            // Gaussians (the paper's footnote 5).
            return None;
        }
        Some(keep_top(&self.scores, 1.0 - ratio))
    }

    fn evaluation_overhead(&self) -> u64 {
        self.overhead
    }

    fn name(&self) -> &'static str {
        "Taming 3DGS"
    }
}

/// LightGaussian-style pruner: global importance = opacity × volume ×
/// observed hit count, evaluated in a dedicated pass.
#[derive(Debug, Clone, Default)]
pub struct LightGaussianPruner {
    hits: Vec<f32>,
    overhead: u64,
}

impl LightGaussianPruner {
    /// Creates an empty pruner.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Pruner for LightGaussianPruner {
    fn observe(&mut self, grads: &[GaussianGrad], _trace: Option<&WorkloadTrace>) {
        if self.hits.len() != grads.len() {
            self.hits.resize(grads.len(), 0.0);
        }
        for (i, g) in grads.iter().enumerate() {
            // A Gaussian that received gradient was rendered (hit).
            if g.color.norm_squared() > 0.0 || g.opacity != 0.0 {
                self.hits[i] += 1.0;
            }
        }
        // Hit counting plus the global score pass below are extra work the
        // reference implementation runs on every scoring round.
        self.overhead += 2 * grads.len() as u64;
    }

    fn select(&mut self, scene: &GaussianScene, ratio: f32) -> Option<Vec<bool>> {
        if self.hits.len() != scene.len() {
            self.hits.resize(scene.len(), 0.0);
        }
        let scores: Vec<f32> = scene
            .gaussians
            .iter()
            .zip(self.hits.iter())
            .map(|(g, &h)| {
                let s = g.scale();
                let volume = s.x * s.y * s.z;
                g.opacity_activated() * volume.cbrt() * (1.0 + h)
            })
            .collect();
        self.overhead += scene.len() as u64;
        Some(keep_top(&scores, 1.0 - ratio))
    }

    fn evaluation_overhead(&self) -> u64 {
        self.overhead
    }

    fn name(&self) -> &'static str {
        "LightGaussian"
    }
}

/// FlashGS-style pruner: hit counts weighted by an image-saliency proxy
/// (per-pixel workload), the most precise and most expensive evaluation.
#[derive(Debug, Clone, Default)]
pub struct FlashGsPruner {
    weighted_hits: Vec<f32>,
    overhead: u64,
}

impl FlashGsPruner {
    /// Creates an empty pruner.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Pruner for FlashGsPruner {
    fn observe(&mut self, grads: &[GaussianGrad], trace: Option<&WorkloadTrace>) {
        if self.weighted_hits.len() != grads.len() {
            self.weighted_hits.resize(grads.len(), 0.0);
        }
        // Saliency proxy: busier images weight hits more.
        let saliency = trace
            .map(|t| (1.0 + t.mean_pixel_workload() as f32).ln())
            .unwrap_or(1.0);
        for (i, g) in grads.iter().enumerate() {
            let mag = g.position.norm() + g.color.norm();
            if mag > 0.0 {
                self.weighted_hits[i] += saliency * (1.0 + mag);
            }
        }
        // Saliency evaluation walks the image as well as the map.
        let image_cost = trace.map(|t| (t.width * t.height) as u64).unwrap_or(0);
        self.overhead += 3 * grads.len() as u64 + image_cost;
    }

    fn select(&mut self, scene: &GaussianScene, ratio: f32) -> Option<Vec<bool>> {
        if self.weighted_hits.len() != scene.len() {
            self.weighted_hits.resize(scene.len(), 0.0);
        }
        self.overhead += scene.len() as u64;
        Some(keep_top(&self.weighted_hits, 1.0 - ratio))
    }

    fn evaluation_overhead(&self) -> u64 {
        self.overhead
    }

    fn name(&self) -> &'static str {
        "FlashGS"
    }
}

/// Keeps the top `keep_fraction` of entries by score.
fn keep_top(scores: &[f32], keep_fraction: f32) -> Vec<bool> {
    let n = scores.len();
    let keep_n = ((n as f32 * keep_fraction).round() as usize).min(n);
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut keep = vec![false; n];
    for &i in order.iter().take(keep_n) {
        keep[i] = true;
    }
    keep
}

/// Adapts any [`Pruner`] into a SLAM pipeline extension that observes
/// tracking iterations and prunes at the end of each frame.
pub struct BaselineExtension<P: Pruner> {
    pruner: P,
    /// Target prune ratio applied whenever the method is ready.
    pub prune_ratio: f32,
    pruned_once: bool,
}

impl<P: Pruner> BaselineExtension<P> {
    /// Wraps a pruner with a target ratio.
    pub fn new(pruner: P, prune_ratio: f32) -> Self {
        Self {
            pruner,
            prune_ratio,
            pruned_once: false,
        }
    }

    /// Access to the wrapped pruner.
    pub fn pruner(&self) -> &P {
        &self.pruner
    }
}

impl<P: Pruner> PipelineExtension for BaselineExtension<P> {
    fn after_tracking_iteration(&mut self, artifacts: &IterationArtifacts<'_>, _mask: &mut [bool]) {
        self.pruner.observe(&artifacts.grads.gaussians, None);
    }

    fn end_of_frame(
        &mut self,
        scene: &GaussianScene,
        _mask: &[bool],
        is_keyframe: bool,
    ) -> Option<Vec<bool>> {
        if is_keyframe || self.pruned_once {
            return None;
        }
        let keep = self.pruner.select(scene, self.prune_ratio)?;
        self.pruned_once = true;
        Some(keep)
    }

    fn name(&self) -> &'static str {
        "baseline-pruner"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtgs_math::{Quat, Vec3};
    use rtgs_render::Gaussian3d;

    fn scene_of(n: usize) -> GaussianScene {
        (0..n)
            .map(|i| {
                Gaussian3d::from_activated(
                    Vec3::new(i as f32 * 0.1, 0.0, 2.0),
                    Vec3::splat(0.05 + 0.01 * (i % 5) as f32),
                    Quat::IDENTITY,
                    0.3 + 0.05 * (i % 10) as f32,
                    Vec3::splat(0.5),
                )
            })
            .collect()
    }

    fn grads_with_signal(n: usize, strong: &[usize]) -> Vec<GaussianGrad> {
        let mut grads = vec![GaussianGrad::default(); n];
        for &i in strong {
            grads[i].position = Vec3::splat(1.0);
            grads[i].color = Vec3::splat(0.5);
            grads[i].cov_frobenius = 1.0;
            grads[i].opacity = 0.5;
        }
        grads
    }

    #[test]
    fn taming_refuses_before_warmup() {
        let mut p = TamingPruner::with_warmup(100);
        let scene = scene_of(10);
        p.observe(&grads_with_signal(10, &[0, 1]), None);
        assert!(p.select(&scene, 0.5).is_none());
        assert_eq!(p.iterations_seen(), 1);
    }

    #[test]
    fn taming_acts_after_warmup() {
        let mut p = TamingPruner::with_warmup(5);
        let scene = scene_of(10);
        for _ in 0..6 {
            p.observe(&grads_with_signal(10, &[0, 1, 2]), None);
        }
        let keep = p.select(&scene, 0.5).unwrap();
        assert_eq!(keep.iter().filter(|&&k| k).count(), 5);
        // The strong-gradient Gaussians survive.
        assert!(keep[0] && keep[1] && keep[2]);
    }

    #[test]
    fn lightgaussian_prefers_hit_and_opaque() {
        let mut p = LightGaussianPruner::new();
        let scene = scene_of(10);
        for _ in 0..3 {
            p.observe(&grads_with_signal(10, &[7, 8, 9]), None);
        }
        let keep = p.select(&scene, 0.7).unwrap();
        assert_eq!(keep.iter().filter(|&&k| k).count(), 3);
        assert!(keep[7] && keep[8] && keep[9]);
    }

    #[test]
    fn flashgs_prunes_to_requested_ratio() {
        let mut p = FlashGsPruner::new();
        let scene = scene_of(20);
        p.observe(&grads_with_signal(20, &[1, 3, 5, 7]), None);
        let keep = p.select(&scene, 0.5).unwrap();
        assert_eq!(keep.iter().filter(|&&k| k).count(), 10);
        assert!(keep[1] && keep[3] && keep[5] && keep[7]);
    }

    #[test]
    fn overhead_grows_with_observations() {
        let mut taming = TamingPruner::with_warmup(5);
        let mut light = LightGaussianPruner::new();
        let mut flash = FlashGsPruner::new();
        let grads = grads_with_signal(100, &[0]);
        for _ in 0..4 {
            taming.observe(&grads, None);
            light.observe(&grads, None);
            flash.observe(&grads, None);
        }
        assert!(taming.evaluation_overhead() > 0);
        // FlashGS is the most expensive evaluator per design.
        assert!(flash.evaluation_overhead() > light.evaluation_overhead());
        assert!(light.evaluation_overhead() > taming.evaluation_overhead());
    }

    #[test]
    fn keep_top_handles_edge_ratios() {
        let scores = vec![3.0, 1.0, 2.0];
        assert_eq!(keep_top(&scores, 1.0), vec![true, true, true]);
        assert_eq!(keep_top(&scores, 0.0), vec![false, false, false]);
        let keep = keep_top(&scores, 1.0 / 3.0);
        assert_eq!(keep, vec![true, false, false]);
    }

    #[test]
    fn baseline_extension_prunes_once() {
        use rtgs_scene::{DatasetProfile, SyntheticDataset};
        use rtgs_slam::{BaseAlgorithm, SlamConfig, SlamPipeline};
        let ds = SyntheticDataset::generate(DatasetProfile::tum_analog().tiny(), 4);
        let mut cfg = SlamConfig::for_algorithm(BaseAlgorithm::MonoGs).with_frames(4);
        cfg.tracking.iterations = 3;
        cfg.mapping_iterations = 3;
        let base = SlamPipeline::new(cfg, &ds).run();
        let ext = BaselineExtension::new(LightGaussianPruner::new(), 0.5);
        let pruned = SlamPipeline::with_extension(cfg, &ds, Box::new(ext)).run();
        assert!(pruned.frames.last().unwrap().gaussians < base.frames.last().unwrap().gaussians);
    }
}
