//! Re-implemented pruning baselines the paper compares against
//! (Sec. 6.1–6.2, Tab. 6, Fig. 13a).
//!
//! Each baseline reproduces the *selection rule* and *cost profile* of the
//! original method on our Gaussian model:
//!
//! - [`TamingPruner`] — Taming 3DGS \[29\]: importance from gradient
//!   statistics collected over a long warm-up horizon. Effective for
//!   offline training; with SLAM's 15–100 iterations per frame the scores
//!   never converge, which is exactly the weakness Tab. 6 exposes.
//! - [`LightGaussianPruner`] — LightGaussian \[7\]: global one-shot
//!   importance from volume × opacity × hit-count, requiring a dedicated
//!   scoring pass over all training views (extra cost, better quality).
//! - [`FlashGsPruner`] — FlashGS \[8\]-style precise selection: adds an
//!   image-saliency weighting on top of hit counts, the most expensive
//!   evaluation of the three.
//!
//! All baselines implement [`Pruner`] and plug into the SLAM pipeline
//! through [`BaselineExtension`]. Like the RTGS pruner, their per-Gaussian
//! statistics are keyed by the sharded map's **stable IDs**: tracking
//! iterations deliver frame-local gradients plus the ID map, observations
//! scatter through it, and selection emits a capacity-sized keep-mask that
//! the pipeline applies by tombstoning — no statistic ever has to survive a
//! reindexing, because there is none.

use rtgs_render::{GaussianGrad, ShardedScene, WorkloadTrace};
use rtgs_slam::{IterationArtifacts, PipelineExtension};

/// A Gaussian-pruning baseline: observes training, then selects which
/// Gaussians to keep.
pub trait Pruner {
    /// Observes one optimization iteration: `grads[k]` belongs to the
    /// Gaussian with stable ID `ids[k]` (the frame's visible working set).
    fn observe(&mut self, ids: &[u32], grads: &[GaussianGrad], trace: Option<&WorkloadTrace>);

    /// Returns the keep-mask (one entry per stable ID, `map.capacity()`
    /// long) that prunes `ratio` of the live Gaussians (0.0–1.0), or
    /// `None` if the method has not gathered enough evidence yet.
    fn select(&mut self, map: &ShardedScene, ratio: f32) -> Option<Vec<bool>>;

    /// Extra *score-evaluation* work performed per observed iteration, in
    /// fragment-equivalent operations. RTGS's score is free (gradients are
    /// reused); these baselines pay for their evaluation passes, which is
    /// what Fig. 13(a) charges them for.
    fn evaluation_overhead(&self) -> u64;

    /// Method name.
    fn name(&self) -> &'static str;
}

/// Grows an ID-keyed statistic buffer to cover every observed ID.
fn ensure_len(buf: &mut Vec<f32>, ids: &[u32]) {
    if let Some(&max_id) = ids.iter().max() {
        if buf.len() <= max_id as usize {
            buf.resize(max_id as usize + 1, 0.0);
        }
    }
}

/// Taming-3DGS-style pruner: accumulates gradient-change statistics and
/// refuses to act before its warm-up horizon (500 iterations in the paper's
/// description) has elapsed.
#[derive(Debug, Clone)]
pub struct TamingPruner {
    /// Iterations required before scores are considered converged.
    pub warmup_iterations: usize,
    seen: usize,
    scores: Vec<f32>,
    prev_scores: Vec<f32>,
    overhead: u64,
}

impl TamingPruner {
    /// Creates the pruner with the paper-reported 500-iteration warm-up.
    pub fn new() -> Self {
        Self::with_warmup(500)
    }

    /// Creates the pruner with a custom warm-up horizon.
    pub fn with_warmup(warmup_iterations: usize) -> Self {
        Self {
            warmup_iterations,
            seen: 0,
            scores: Vec::new(),
            prev_scores: Vec::new(),
            overhead: 0,
        }
    }

    /// Iterations observed so far.
    pub fn iterations_seen(&self) -> usize {
        self.seen
    }
}

impl Default for TamingPruner {
    fn default() -> Self {
        Self::new()
    }
}

impl Pruner for TamingPruner {
    fn observe(&mut self, ids: &[u32], grads: &[GaussianGrad], _trace: Option<&WorkloadTrace>) {
        self.seen += 1;
        ensure_len(&mut self.scores, ids);
        ensure_len(&mut self.prev_scores, ids);
        // Gradient-change statistic: |g_t| blended with the previous
        // estimate; Taming 3DGS predicts importance from how scores
        // evolve. The decay applies to *every* tracked Gaussian — an
        // invisible one contributes a zero gradient, exactly as in the
        // flat-map formulation — so the ranking cannot depend on which
        // shard a Gaussian happens to sit in. This full-map pass is the
        // method's genuine cost profile (the weakness Tab. 6 charges it
        // for), not an artifact of our store.
        for (prev, score) in self.prev_scores.iter_mut().zip(self.scores.iter_mut()) {
            *prev = *score;
            *score *= 0.99;
        }
        for (&id, g) in ids.iter().zip(grads.iter()) {
            let s = g.position.norm() + g.cov_frobenius;
            self.scores[id as usize] += 0.01 * s;
        }
        // Maintaining the dual score buffers costs one pass over the map.
        self.overhead += self.scores.len() as u64;
    }

    fn select(&mut self, map: &ShardedScene, ratio: f32) -> Option<Vec<bool>> {
        if self.seen < self.warmup_iterations {
            // Scores have not converged: acting now would prune the wrong
            // Gaussians (the paper's footnote 5).
            return None;
        }
        self.scores.resize(map.capacity(), 0.0);
        Some(keep_top_live(
            map,
            |id| self.scores[id as usize],
            1.0 - ratio,
        ))
    }

    fn evaluation_overhead(&self) -> u64 {
        self.overhead
    }

    fn name(&self) -> &'static str {
        "Taming 3DGS"
    }
}

/// LightGaussian-style pruner: global importance = opacity × volume ×
/// observed hit count, evaluated in a dedicated pass.
#[derive(Debug, Clone, Default)]
pub struct LightGaussianPruner {
    hits: Vec<f32>,
    overhead: u64,
}

impl LightGaussianPruner {
    /// Creates an empty pruner.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Pruner for LightGaussianPruner {
    fn observe(&mut self, ids: &[u32], grads: &[GaussianGrad], _trace: Option<&WorkloadTrace>) {
        ensure_len(&mut self.hits, ids);
        for (&id, g) in ids.iter().zip(grads.iter()) {
            // A Gaussian that received gradient was rendered (hit).
            if g.color.norm_squared() > 0.0 || g.opacity != 0.0 {
                self.hits[id as usize] += 1.0;
            }
        }
        // Hit counting plus the global score pass below are extra work the
        // reference implementation runs on every scoring round.
        self.overhead += 2 * grads.len() as u64;
    }

    fn select(&mut self, map: &ShardedScene, ratio: f32) -> Option<Vec<bool>> {
        self.hits.resize(map.capacity(), 0.0);
        self.overhead += map.len() as u64;
        let hits = &self.hits;
        Some(keep_top_live(
            map,
            |id| {
                let g = map.gaussian(id);
                let s = g.scale();
                let volume = s.x * s.y * s.z;
                g.opacity_activated() * volume.cbrt() * (1.0 + hits[id as usize])
            },
            1.0 - ratio,
        ))
    }

    fn evaluation_overhead(&self) -> u64 {
        self.overhead
    }

    fn name(&self) -> &'static str {
        "LightGaussian"
    }
}

/// FlashGS-style pruner: hit counts weighted by an image-saliency proxy
/// (per-pixel workload), the most precise and most expensive evaluation.
#[derive(Debug, Clone, Default)]
pub struct FlashGsPruner {
    weighted_hits: Vec<f32>,
    overhead: u64,
}

impl FlashGsPruner {
    /// Creates an empty pruner.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Pruner for FlashGsPruner {
    fn observe(&mut self, ids: &[u32], grads: &[GaussianGrad], trace: Option<&WorkloadTrace>) {
        ensure_len(&mut self.weighted_hits, ids);
        // Saliency proxy: busier images weight hits more.
        let saliency = trace
            .map(|t| (1.0 + t.mean_pixel_workload() as f32).ln())
            .unwrap_or(1.0);
        for (&id, g) in ids.iter().zip(grads.iter()) {
            let mag = g.position.norm() + g.color.norm();
            if mag > 0.0 {
                self.weighted_hits[id as usize] += saliency * (1.0 + mag);
            }
        }
        // Saliency evaluation walks the image as well as the observed set.
        let image_cost = trace.map(|t| (t.width * t.height) as u64).unwrap_or(0);
        self.overhead += 3 * grads.len() as u64 + image_cost;
    }

    fn select(&mut self, map: &ShardedScene, ratio: f32) -> Option<Vec<bool>> {
        self.weighted_hits.resize(map.capacity(), 0.0);
        self.overhead += map.len() as u64;
        let hits = &self.weighted_hits;
        Some(keep_top_live(map, |id| hits[id as usize], 1.0 - ratio))
    }

    fn evaluation_overhead(&self) -> u64 {
        self.overhead
    }

    fn name(&self) -> &'static str {
        "FlashGS"
    }
}

/// Keeps the top `keep_fraction` of *live* Gaussians by score. The
/// returned mask is `map.capacity()` long; tombstoned IDs read `true`
/// (nothing to remove there).
fn keep_top_live(map: &ShardedScene, score: impl Fn(u32) -> f32, keep_fraction: f32) -> Vec<bool> {
    let mut scored: Vec<(f32, u32)> = map.live_ids().map(|id| (score(id), id)).collect();
    let keep_n = ((scored.len() as f32 * keep_fraction).round() as usize).min(scored.len());
    scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    let mut keep = vec![true; map.capacity()];
    for &(_, id) in scored.iter().skip(keep_n) {
        keep[id as usize] = false;
    }
    keep
}

/// Adapts any [`Pruner`] into a SLAM pipeline extension that observes
/// tracking iterations and prunes at the end of each frame.
pub struct BaselineExtension<P: Pruner> {
    pruner: P,
    /// Target prune ratio applied whenever the method is ready.
    pub prune_ratio: f32,
    pruned_once: bool,
}

impl<P: Pruner> BaselineExtension<P> {
    /// Wraps a pruner with a target ratio.
    pub fn new(pruner: P, prune_ratio: f32) -> Self {
        Self {
            pruner,
            prune_ratio,
            pruned_once: false,
        }
    }

    /// Access to the wrapped pruner.
    pub fn pruner(&self) -> &P {
        &self.pruner
    }
}

impl<P: Pruner> PipelineExtension for BaselineExtension<P> {
    fn after_tracking_iteration(&mut self, artifacts: &IterationArtifacts<'_>, _mask: &mut [bool]) {
        self.pruner
            .observe(artifacts.visible_ids, &artifacts.grads.gaussians, None);
    }

    fn end_of_frame(
        &mut self,
        map: &ShardedScene,
        _mask: &[bool],
        is_keyframe: bool,
    ) -> Option<Vec<bool>> {
        if is_keyframe || self.pruned_once {
            return None;
        }
        let keep = self.pruner.select(map, self.prune_ratio)?;
        self.pruned_once = true;
        Some(keep)
    }

    fn name(&self) -> &'static str {
        "baseline-pruner"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtgs_math::{Quat, Vec3};
    use rtgs_render::Gaussian3d;

    fn map_of(n: usize) -> ShardedScene {
        let mut map = ShardedScene::new(1.0);
        for i in 0..n {
            map.insert(Gaussian3d::from_activated(
                Vec3::new(i as f32 * 0.1, 0.0, 2.0),
                Vec3::splat(0.05 + 0.01 * (i % 5) as f32),
                Quat::IDENTITY,
                0.3 + 0.05 * (i % 10) as f32,
                Vec3::splat(0.5),
            ));
        }
        map
    }

    fn ids_of(n: usize) -> Vec<u32> {
        (0..n as u32).collect()
    }

    fn grads_with_signal(n: usize, strong: &[usize]) -> Vec<GaussianGrad> {
        let mut grads = vec![GaussianGrad::default(); n];
        for &i in strong {
            grads[i].position = Vec3::splat(1.0);
            grads[i].color = Vec3::splat(0.5);
            grads[i].cov_frobenius = 1.0;
            grads[i].opacity = 0.5;
        }
        grads
    }

    #[test]
    fn taming_refuses_before_warmup() {
        let mut p = TamingPruner::with_warmup(100);
        let map = map_of(10);
        p.observe(&ids_of(10), &grads_with_signal(10, &[0, 1]), None);
        assert!(p.select(&map, 0.5).is_none());
        assert_eq!(p.iterations_seen(), 1);
    }

    #[test]
    fn taming_acts_after_warmup() {
        let mut p = TamingPruner::with_warmup(5);
        let map = map_of(10);
        for _ in 0..6 {
            p.observe(&ids_of(10), &grads_with_signal(10, &[0, 1, 2]), None);
        }
        let keep = p.select(&map, 0.5).unwrap();
        assert_eq!(keep.iter().filter(|&&k| !k).count(), 5);
        // The strong-gradient Gaussians survive.
        assert!(keep[0] && keep[1] && keep[2]);
    }

    #[test]
    fn lightgaussian_prefers_hit_and_opaque() {
        let mut p = LightGaussianPruner::new();
        let map = map_of(10);
        for _ in 0..3 {
            p.observe(&ids_of(10), &grads_with_signal(10, &[7, 8, 9]), None);
        }
        let keep = p.select(&map, 0.7).unwrap();
        assert_eq!(keep.iter().filter(|&&k| k).count(), 3);
        assert!(keep[7] && keep[8] && keep[9]);
    }

    #[test]
    fn flashgs_prunes_to_requested_ratio() {
        let mut p = FlashGsPruner::new();
        let map = map_of(20);
        p.observe(&ids_of(20), &grads_with_signal(20, &[1, 3, 5, 7]), None);
        let keep = p.select(&map, 0.5).unwrap();
        assert_eq!(keep.iter().filter(|&&k| k).count(), 10);
        assert!(keep[1] && keep[3] && keep[5] && keep[7]);
    }

    /// Frame-local observations scattered through a sparse visible-ID set
    /// must land on the right stable IDs (the post-shard contract).
    #[test]
    fn sparse_visible_set_scatters_by_id() {
        let mut p = FlashGsPruner::new();
        let map = map_of(10);
        // Only IDs 4 and 9 visible this iteration, both with signal.
        let ids = vec![4u32, 9u32];
        p.observe(&ids, &grads_with_signal(2, &[0, 1]), None);
        let keep = p.select(&map, 0.8).unwrap();
        assert_eq!(keep.iter().filter(|&&k| k).count(), 2);
        assert!(keep[4] && keep[9]);
    }

    /// Tombstoned IDs stay out of the ranking and read `true` in the mask.
    #[test]
    fn selection_ignores_tombstoned_ids() {
        let mut p = FlashGsPruner::new();
        let mut map = map_of(10);
        p.observe(&ids_of(10), &grads_with_signal(10, &[0, 1, 2, 3]), None);
        map.tombstone(0);
        map.tombstone(5);
        let keep = p.select(&map, 0.5).unwrap();
        assert_eq!(keep.len(), map.capacity());
        assert!(keep[0] && keep[5], "dead IDs are not selected for removal");
        // Half of the 8 live Gaussians are marked for removal.
        let removed_live = keep
            .iter()
            .enumerate()
            .filter(|&(id, &k)| !k && map.is_live(id as u32))
            .count();
        assert_eq!(removed_live, 4);
    }

    #[test]
    fn overhead_grows_with_observations() {
        let mut taming = TamingPruner::with_warmup(5);
        let mut light = LightGaussianPruner::new();
        let mut flash = FlashGsPruner::new();
        let ids = ids_of(100);
        let grads = grads_with_signal(100, &[0]);
        for _ in 0..4 {
            taming.observe(&ids, &grads, None);
            light.observe(&ids, &grads, None);
            flash.observe(&ids, &grads, None);
        }
        assert!(taming.evaluation_overhead() > 0);
        // FlashGS is the most expensive evaluator per design.
        assert!(flash.evaluation_overhead() > light.evaluation_overhead());
        assert!(light.evaluation_overhead() > taming.evaluation_overhead());
    }

    #[test]
    fn keep_top_live_handles_edge_ratios() {
        let map = map_of(3);
        let scores = [3.0f32, 1.0, 2.0];
        let all = keep_top_live(&map, |id| scores[id as usize], 1.0);
        assert_eq!(all, vec![true, true, true]);
        let none = keep_top_live(&map, |id| scores[id as usize], 0.0);
        assert_eq!(none, vec![false, false, false]);
        let third = keep_top_live(&map, |id| scores[id as usize], 1.0 / 3.0);
        assert_eq!(third, vec![true, false, false]);
    }

    #[test]
    fn baseline_extension_prunes_once() {
        use rtgs_scene::{DatasetProfile, SyntheticDataset};
        use rtgs_slam::{BaseAlgorithm, SlamConfig, SlamPipeline};
        let ds = SyntheticDataset::generate(DatasetProfile::tum_analog().tiny(), 4);
        let mut cfg = SlamConfig::for_algorithm(BaseAlgorithm::MonoGs).with_frames(4);
        cfg.tracking.iterations = 3;
        cfg.mapping_iterations = 3;
        let base = SlamPipeline::new(cfg, &ds).run();
        let ext = BaselineExtension::new(LightGaussianPruner::new(), 0.5);
        let pruned = SlamPipeline::with_extension(cfg, &ds, Box::new(ext)).run();
        assert!(pruned.frames.last().unwrap().gaussians < base.frames.last().unwrap().gaussians);
    }
}
