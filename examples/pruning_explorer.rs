//! Pruning-ratio explorer: how hard can the map be pruned before tracking
//! breaks? Reproduces the trade-off study behind Fig. 13(b)/14(a).
//!
//! ```bash
//! cargo run --release --example pruning_explorer
//! ```

use rtgs::core::{PruningConfig, RtgsConfig};
use rtgs::metrics::per_frame_errors;
use rtgs::scene::{DatasetProfile, SyntheticDataset};
use rtgs::slam::{BaseAlgorithm, SlamConfig, SlamPipeline};

fn main() {
    let frames = 8;
    let dataset = SyntheticDataset::generate(DatasetProfile::replica_analog().small(), frames);
    let mut config = SlamConfig::for_algorithm(BaseAlgorithm::MonoGs).with_frames(frames);
    config.tracking.iterations = 8;
    config.mapping_iterations = 10;

    println!(
        "{:<14}{:>10}{:>14}{:>16}{:>16}",
        "prune ratio", "ATE(cm)", "final map", "latency/frame", "final drift(cm)"
    );
    println!("{:-<70}", "");
    for ratio in [0.0f32, 0.2, 0.4, 0.5, 0.6, 0.8] {
        let report = if ratio == 0.0 {
            SlamPipeline::new(config, &dataset).run()
        } else {
            let rtgs = RtgsConfig {
                pruning: Some(PruningConfig {
                    max_prune_ratio: ratio,
                    prune_step_fraction: (ratio / 2.0).max(0.1),
                    ..Default::default()
                }),
                downsampling: None,
            };
            SlamPipeline::with_extension(config, &dataset, rtgs.into_extension()).run()
        };
        let drift = per_frame_errors(
            &report.trajectory,
            &dataset.poses_c2w[..report.trajectory.len()],
        );
        println!(
            "{:<14}{:>10.2}{:>14}{:>13.1} ms{:>16.2}",
            format!("{:.0}%", ratio * 100.0),
            report.ate.rmse_cm(),
            report.frames.last().map(|f| f.gaussians).unwrap_or(0),
            report.total_wall.as_secs_f64() * 1e3 / report.frames_processed.max(1) as f64,
            drift.last().copied().unwrap_or(0.0) * 100.0,
        );
    }
    println!(
        "\nExpected shape (paper Fig. 14a): quality holds up to ~50% pruning, then ATE\n\
         rises sharply — which is why RTGS caps its cumulative prune ratio at 50%."
    );
}
