//! Quickstart: run 3DGS-SLAM with the RTGS redundancy-reduction algorithm
//! on a synthetic RGB-D sequence and print the run report.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use rtgs::core::RtgsConfig;
use rtgs::scene::{DatasetProfile, SyntheticDataset};
use rtgs::slam::{BaseAlgorithm, SlamConfig, SlamPipeline};

fn main() {
    // 1. Generate a Replica-like synthetic RGB-D sequence (the dataset
    //    analog substitutes for the recorded datasets; see DESIGN.md).
    let profile = DatasetProfile::replica_analog().small();
    let frames = 8;
    println!("Generating '{}' ({} frames)...", profile.name, frames);
    let dataset = SyntheticDataset::generate(profile, frames);

    // 2. Configure a MonoGS-style base pipeline and attach the RTGS
    //    algorithm (adaptive Gaussian pruning + dynamic downsampling).
    let mut config = SlamConfig::for_algorithm(BaseAlgorithm::MonoGs).with_frames(frames);
    config.tracking.iterations = 8;
    config.mapping_iterations = 10;

    println!("Running base MonoGS...");
    let base = SlamPipeline::new(config, &dataset).run();

    println!("Running MonoGS + RTGS...");
    let ours =
        SlamPipeline::with_extension(config, &dataset, RtgsConfig::full().into_extension()).run();

    // 3. Compare.
    println!("\n{:<22}{:>12}{:>12}", "metric", "base", "ours");
    println!("{:-<46}", "");
    println!(
        "{:<22}{:>12.2}{:>12.2}",
        "ATE (cm)",
        base.ate.rmse_cm(),
        ours.ate.rmse_cm()
    );
    println!(
        "{:<22}{:>12.2}{:>12.2}",
        "PSNR (dB)", base.mean_psnr, ours.mean_psnr
    );
    println!(
        "{:<22}{:>12.2}{:>12.2}",
        "overall FPS (CPU)",
        base.overall_fps(),
        ours.overall_fps()
    );
    println!(
        "{:<22}{:>12}{:>12}",
        "peak Gaussians", base.peak_gaussians, ours.peak_gaussians
    );
    println!(
        "\nRTGS speedup: {:.2}x at {:+.1}% ATE change",
        ours.overall_fps() / base.overall_fps().max(1e-9),
        (ours.ate.rmse / base.ate.rmse.max(1e-12) - 1.0) * 100.0
    );
}
