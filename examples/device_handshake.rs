//! Programming-model demo: drive the `RTGS_execute` / `RTGS_check_status`
//! frame-level handshake of paper Listing 1 through a keyframe /
//! non-keyframe sequence.
//!
//! ```bash
//! cargo run --release --example device_handshake
//! ```

use rtgs::core::{RtgsDevice, RtgsStatus};

fn main() {
    let mut device = RtgsDevice::new();
    let keyframe_interval = 5;

    println!("frame  keyframe  phase sequence");
    println!("{:-<60}", "");
    for frame in 0..12 {
        let is_keyframe = frame % keyframe_interval == 0;
        device
            .execute(frame, is_keyframe)
            .expect("device should be idle between frames");
        let mut phases = vec!["EXECUTING".to_string()];

        // The host polls while RTGS renders and backpropagates.
        let mut status = device.advance();
        if status == RtgsStatus::WaitPruning {
            phases.push("WAIT_PRUNING".into());
            // SMs consume the gradients, prune, and raise pruning_done.
            device.signal_pruning_done();
            status = device.advance();
        }
        assert_eq!(status, RtgsStatus::Idle);
        phases.push("IDLE".into());

        println!(
            "{:<7}{:<10}{}",
            frame,
            if is_keyframe { "yes" } else { "no" },
            phases.join(" -> ")
        );
    }
    println!(
        "\nframes completed: {} (keyframes skip the pruning handshake and update\n\
         Gaussians directly, Sec. 5.5)",
        device.frames_completed()
    );
}
