//! Edge deployment study: will a robot's onboard computer hit 30 FPS?
//!
//! Models the paper's headline scenario — a robotic-navigation SLAM stack
//! on an ONX-class edge GPU — and asks whether the RTGS plug-in closes the
//! real-time gap. Runs the SLAM pipeline once to capture real workload
//! traces, then simulates four hardware configurations (Fig. 15).
//!
//! ```bash
//! cargo run --release --example edge_deployment
//! ```

use rtgs::accel::{simulate_run, FrameWorkload, HardwareModel, RunWorkload};
use rtgs::core::RtgsConfig;
use rtgs::scene::{DatasetProfile, SyntheticDataset};
use rtgs::slam::{BaseAlgorithm, SlamConfig, SlamPipeline, SlamReport};

fn to_workload(report: &SlamReport) -> RunWorkload {
    RunWorkload {
        frames: report
            .frames
            .iter()
            .map(|f| FrameWorkload {
                tracking: f.traces.clone(),
                mapping: f.mapping_traces.clone(),
                is_keyframe: f.is_keyframe,
            })
            .collect(),
    }
}

fn main() {
    let frames = 8;
    let dataset = SyntheticDataset::generate(DatasetProfile::scannet_analog().small(), frames);

    let mut config = SlamConfig::for_algorithm(BaseAlgorithm::GsSlam).with_frames(frames);
    config.tracking.iterations = 6;
    config.mapping_iterations = 8;
    config.record_traces = true;

    println!("Capturing workload traces (GS-SLAM on ScanNet-analog)...");
    let base = SlamPipeline::new(config, &dataset).run();
    let ours =
        SlamPipeline::with_extension(config, &dataset, RtgsConfig::full().into_extension()).run();
    let base_run = to_workload(&base);
    let ours_run = to_workload(&ours);

    println!("\nSimulated deployment options:");
    println!(
        "{:<34}{:>10}{:>14}{:>12}",
        "configuration", "FPS", "energy/frame", "real-time?"
    );
    println!("{:-<70}", "");
    let configs: [(&str, HardwareModel, &RunWorkload); 4] = [
        ("ONX edge GPU", HardwareModel::onx(), &base_run),
        ("ONX + DISTWAR", HardwareModel::onx_distwar(), &base_run),
        (
            "ONX + RTGS (tracking only)",
            HardwareModel::rtgs(),
            &ours_run,
        ),
        ("ONX + RTGS (full)", HardwareModel::rtgs(), &ours_run),
    ];
    for (i, (name, hw, run)) in configs.iter().enumerate() {
        let include_mapping = i != 2;
        let cost = simulate_run(run, hw, include_mapping);
        println!(
            "{:<34}{:>10.1}{:>12.2}mJ{:>12}",
            name,
            cost.overall_fps,
            cost.energy_per_frame_j * 1e3,
            if cost.overall_fps >= 30.0 {
                "yes"
            } else {
                "no"
            }
        );
    }
    println!(
        "\nNote: FPS is modeled on this repo's 1/16-resolution dataset analogs; the\n\
         paper's absolute numbers differ, but the configuration ordering and the\n\
         real-time verdict are the reproduction target (Fig. 15)."
    );
}
