//! Integration tests reproducing the paper's profiling observations
//! (Sec. 3) on synthetic data — the empirical premises the whole design
//! rests on.

use rtgs::metrics::ssim;
use rtgs::render::ShardedScene;
use rtgs::scene::{DatasetProfile, SyntheticDataset};
use rtgs::slam::{
    track_frame, IterationArtifacts, NoObserver, StageNanos, TrackingConfig, TrackingObserver,
};

/// Observation 3: the Gaussian gradient distribution during tracking is
/// highly skewed — a small fraction carries most of the mass.
#[test]
fn observation3_gradient_skew() {
    let ds = SyntheticDataset::generate(DatasetProfile::tum_analog(), 2);
    let map = ShardedScene::from_scene(&ds.reference_scene, 1.0);
    struct Collect {
        scores: Vec<f64>,
    }
    impl TrackingObserver for Collect {
        fn after_iteration(&mut self, a: &IterationArtifacts<'_>, _m: &mut [bool]) {
            for (k, g) in a.grads.gaussians.iter().enumerate() {
                self.scores[a.visible_ids[k] as usize] += g.importance_score(0.8) as f64;
            }
        }
    }
    let mut obs = Collect {
        scores: vec![0.0; map.capacity()],
    };
    let mut mask = vec![true; map.capacity()];
    let mut t = StageNanos::default();
    let _ = track_frame(
        &map,
        ds.poses_c2w[1].inverse(),
        &ds.frames[1],
        &ds.camera,
        &TrackingConfig {
            iterations: 6,
            ..Default::default()
        },
        &mut mask,
        &mut NoObserver,
        &mut t,
    );
    // Collect over a second tracking pass with the observer.
    let _ = track_frame(
        &map,
        ds.poses_c2w[1].inverse(),
        &ds.frames[1],
        &ds.camera,
        &TrackingConfig {
            iterations: 6,
            ..Default::default()
        },
        &mut mask,
        &mut obs,
        &mut t,
    );
    let mut sorted = obs.scores.clone();
    sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
    let total: f64 = sorted.iter().sum();
    assert!(total > 0.0);
    let top14: f64 = sorted[..(sorted.len() * 14 / 100).max(1)].iter().sum();
    assert!(
        top14 / total > 0.5,
        "top 14% carry only {:.1}% of the importance mass",
        top14 / total * 100.0
    );
}

/// Observation 5: consecutive frames are highly similar, and similarity is
/// highest right after a keyframe-spaced interval.
#[test]
fn observation5_frame_similarity() {
    let ds = SyntheticDataset::generate(DatasetProfile::replica_analog().small(), 6);
    for i in 1..ds.len() {
        let s = ssim(&ds.frames[i - 1].color, &ds.frames[i].color);
        assert!(
            s > 0.6,
            "consecutive frames should be structurally similar, SSIM {s:.3} at {i}"
        );
    }
    // Far-apart frames are less similar than adjacent ones.
    let adjacent = ssim(&ds.frames[0].color, &ds.frames[1].color);
    let distant = ssim(&ds.frames[0].color, &ds.frames[5].color);
    assert!(adjacent >= distant - 0.05);
}

/// Observation 6: per-pixel workload distributions are nearly identical
/// across consecutive tracking iterations (the WSU's premise).
#[test]
fn observation6_iteration_similarity() {
    let ds = SyntheticDataset::generate(DatasetProfile::tum_analog(), 2);
    let map = ShardedScene::from_scene(&ds.reference_scene, 1.0);
    let mut mask = vec![true; map.capacity()];
    let mut t = StageNanos::default();
    let result = track_frame(
        &map,
        ds.poses_c2w[1].inverse(),
        &ds.frames[1],
        &ds.camera,
        &TrackingConfig {
            iterations: 4,
            record_traces: true,
            ..Default::default()
        },
        &mut mask,
        &mut NoObserver,
        &mut t,
    );
    assert!(result.traces.len() >= 2);
    for pair in result.traces.windows(2) {
        let sim = pair[0].workload_similarity(&pair[1]);
        assert!(
            sim < 0.15,
            "iteration workloads should be nearly identical, diff {sim:.3}"
        );
    }
}

/// Observations 1/2: tracking + mapping dominate runtime, and within them
/// rendering + rendering BP dominate the stage breakdown.
#[test]
fn observations12_stage_dominance() {
    use rtgs::slam::{BaseAlgorithm, SlamConfig, SlamPipeline};
    let ds = SyntheticDataset::generate(DatasetProfile::tum_analog().tiny(), 4);
    let mut cfg = SlamConfig::for_algorithm(BaseAlgorithm::MonoGs).with_frames(4);
    cfg.tracking.iterations = 4;
    cfg.mapping_iterations = 5;
    let report = SlamPipeline::new(cfg, &ds).run();
    let shares = report.stage_timings.shares();
    // render + render_bp (+ preprocess_bp) carry most of the stage time.
    let render_side = shares[2] + shares[3] + shares[4];
    assert!(
        render_side > 0.5,
        "rendering + BP should dominate, got {render_side:.2}"
    );
    // Tracking + mapping account for the bulk of the wall clock.
    let tm = (report.tracking_wall + report.mapping_wall).as_secs_f64();
    let total = report.total_wall.as_secs_f64();
    assert!(tm / total > 0.6, "tracking+mapping share {:.2}", tm / total);
}
