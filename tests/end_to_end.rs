//! Cross-crate integration tests: the full RTGS stack from dataset
//! synthesis through SLAM, the RTGS algorithm, and the hardware models.

use rtgs::accel::{simulate_run, FrameWorkload, HardwareModel, RunWorkload};
use rtgs::core::RtgsConfig;
use rtgs::scene::{DatasetProfile, SyntheticDataset};
use rtgs::slam::{BaseAlgorithm, SlamConfig, SlamPipeline, SlamReport};

fn to_workload(report: &SlamReport) -> RunWorkload {
    RunWorkload {
        frames: report
            .frames
            .iter()
            .map(|f| FrameWorkload {
                tracking: f.traces.clone(),
                mapping: f.mapping_traces.clone(),
                is_keyframe: f.is_keyframe,
            })
            .collect(),
    }
}

fn quick_config(algo: BaseAlgorithm, frames: usize) -> SlamConfig {
    let mut cfg = SlamConfig::for_algorithm(algo).with_frames(frames);
    cfg.tracking.iterations = 4;
    cfg.mapping_iterations = 5;
    cfg
}

#[test]
fn full_stack_base_vs_rtgs() {
    let ds = SyntheticDataset::generate(DatasetProfile::tum_analog().tiny(), 5);
    let cfg = quick_config(BaseAlgorithm::MonoGs, 5);
    let base = SlamPipeline::new(cfg, &ds).run();
    let ours = SlamPipeline::with_extension(cfg, &ds, RtgsConfig::full().into_extension()).run();

    assert_eq!(base.frames_processed, 5);
    assert_eq!(ours.frames_processed, 5);
    // The RTGS algorithm must not blow up quality on a short sequence.
    assert!(ours.ate.rmse < base.ate.rmse * 2.0 + 0.05);
    // And it must reduce tracked work (fragments) overall.
    let work = |r: &SlamReport| -> u64 { r.frames.iter().map(|f| f.tracking_fragments).sum() };
    assert!(work(&ours) <= work(&base));
}

#[test]
fn traces_flow_into_hardware_simulation() {
    let ds = SyntheticDataset::generate(DatasetProfile::tum_analog().tiny(), 4);
    let mut cfg = quick_config(BaseAlgorithm::GsSlam, 4);
    cfg.record_traces = true;
    let report = SlamPipeline::new(cfg, &ds).run();
    let run = to_workload(&report);
    assert!(run.frames.iter().any(|f| !f.tracking.is_empty()));

    let onx = simulate_run(&run, &HardwareModel::onx(), true);
    let rtgs = simulate_run(&run, &HardwareModel::rtgs(), true);
    assert!(onx.overall_fps > 0.0);
    assert!(rtgs.overall_fps > onx.overall_fps, "plug-in must win");
    assert!(rtgs.energy_per_frame_j < onx.energy_per_frame_j);
}

#[test]
fn deterministic_end_to_end() {
    let ds_a = SyntheticDataset::generate(DatasetProfile::replica_analog().tiny(), 3);
    let ds_b = SyntheticDataset::generate(DatasetProfile::replica_analog().tiny(), 3);
    let cfg = quick_config(BaseAlgorithm::MonoGs, 3);
    let a = SlamPipeline::new(cfg, &ds_a).run();
    let b = SlamPipeline::new(cfg, &ds_b).run();
    assert_eq!(a.ate.rmse, b.ate.rmse, "whole stack must be deterministic");
    assert_eq!(a.peak_gaussians, b.peak_gaussians);
    for (pa, pb) in a.trajectory.iter().zip(b.trajectory.iter()) {
        assert_eq!(pa.translation, pb.translation);
    }
}

#[test]
fn all_four_algorithms_complete() {
    let ds = SyntheticDataset::generate(DatasetProfile::tum_analog().tiny(), 3);
    for algo in BaseAlgorithm::all() {
        let report = SlamPipeline::new(quick_config(algo, 3), &ds).run();
        assert_eq!(report.frames_processed, 3, "{} failed", algo.name());
        assert!(report.mean_psnr > 5.0, "{} produced garbage", algo.name());
    }
}

#[test]
fn splatam_has_most_keyframes() {
    let ds = SyntheticDataset::generate(DatasetProfile::tum_analog().tiny(), 5);
    let splatam = SlamPipeline::new(quick_config(BaseAlgorithm::SplaTam, 5), &ds).run();
    let monogs = SlamPipeline::new(quick_config(BaseAlgorithm::MonoGs, 5), &ds).run();
    assert!(splatam.keyframes >= monogs.keyframes);
    assert_eq!(splatam.keyframes, 5);
}

#[test]
fn rtgs_prunes_and_downsamples() {
    let ds = SyntheticDataset::generate(DatasetProfile::replica_analog().tiny(), 6);
    let cfg = quick_config(BaseAlgorithm::MonoGs, 6);
    let ours = SlamPipeline::with_extension(cfg, &ds, RtgsConfig::full().into_extension()).run();
    // Downsampling: at least one non-keyframe tracked below native res
    // (the tiny profile may clamp, so accept factor >= 1 but expect the
    // schedule to have been consulted).
    assert!(ours.frames.iter().any(|f| !f.is_keyframe));
    // Frame reports carry the factor used.
    for f in &ours.frames {
        assert!(f.resolution_factor >= 1);
    }
}
