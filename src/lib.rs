//! # RTGS: Real-Time 3D Gaussian Splatting SLAM via Multi-Level Redundancy Reduction
//!
//! Facade crate re-exporting the full RTGS reproduction workspace. Downstream
//! users can depend on this single crate to access the differentiable 3DGS
//! rasterizer, the SLAM substrate, the RTGS redundancy-reduction algorithms,
//! the pruning baselines and the cycle-level hardware models.
//!
//! # Quickstart
//!
//! ```
//! use rtgs::core::RtgsConfig;
//! use rtgs::scene::{DatasetProfile, SyntheticDataset};
//! use rtgs::slam::{BaseAlgorithm, SlamConfig, SlamPipeline};
//!
//! // A tiny Replica-like sequence.
//! let dataset = SyntheticDataset::generate(DatasetProfile::replica_analog().tiny(), 4);
//! let mut config = SlamConfig::for_algorithm(BaseAlgorithm::MonoGs).with_frames(4);
//! config.tracking.iterations = 3;
//! config.mapping_iterations = 3;
//! let mut pipeline =
//!     SlamPipeline::with_extension(config, &dataset, RtgsConfig::full().into_extension());
//! let report = pipeline.run();
//! assert_eq!(report.frames_processed, 4);
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and `crates/experiments`
//! for the per-table / per-figure reproduction harness.

pub use rtgs_accel as accel;
pub use rtgs_baselines as baselines;
pub use rtgs_core as core;
pub use rtgs_math as math;
pub use rtgs_metrics as metrics;
pub use rtgs_render as render;
pub use rtgs_replicate as replicate;
pub use rtgs_runtime as runtime;
pub use rtgs_scene as scene;
pub use rtgs_slam as slam;
pub use rtgs_snapshot as snapshot;
pub use rtgs_telemetry as telemetry;
